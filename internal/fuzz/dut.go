// Package fuzz implements Sonar's microarchitectural-state-guided fuzzing
// (paper §6): the secret-dependent testcase template, seed retention and
// selection driven by the reqsIntvl feedback, and the adaptive directed
// mutation strategy that shifts request timing by growing or shrinking the
// dependency chain at the head of a testcase.
package fuzz

import (
	"sync"

	"sonar/internal/isa"
	"sonar/internal/monitor"
	"sonar/internal/trace"
	"sonar/internal/uarch"
)

// Memory layout shared by all testcases.
const (
	// CodeBase is where the victim program is placed.
	CodeBase uint64 = 0x1_0000
	// HandlerBase is where exception handlers are placed.
	HandlerBase uint64 = 0x2_0000
	// AttackerCodeBase is where the dual-core attacker program is placed.
	AttackerCodeBase uint64 = 0x3_0000
	// DataBase is the start of the victim data window.
	DataBase uint64 = 0x4_0000
	// AttackerDataBase is the start of the attacker data window.
	AttackerDataBase uint64 = 0x6_0000
	// SecretAddr holds the secret value during fuzzing (unprivileged).
	SecretAddr uint64 = 0x8_0000
	// PrivBase..PrivLimit is the privileged range used by Meltdown-style
	// exploitability analysis (package attack).
	PrivBase  uint64 = 0x10_0000
	PrivLimit uint64 = 0x10_1000
)

// Reserved registers (never touched by random fillers).
const (
	// RegChain carries the head dependency chain value.
	RegChain = 9
	// RegProbe0..2 are scratch registers for probe address computation.
	RegProbe0 = 10
	RegProbe1 = 11
	RegProbe2 = 12
	// RegDataBase holds DataBase.
	RegDataBase = 28
	// RegSecretBase holds SecretAddr.
	RegSecretBase = 29
	// RegSecret receives the loaded secret value.
	RegSecret = 30
	// RegTmp is scratch for secret-dependent ops.
	RegTmp = 31
)

// DUT bundles an elaborated SoC with its contention-point analysis and
// instrumentation, ready to execute testcases.
type DUT struct {
	SoC      *uarch.SoC       // the elaborated device
	Analysis *trace.Analysis  // §5 contention-point identification results
	Mon      *monitor.Monitor // reqsIntvl/state monitor over Analysis' points
	// WindowAlwaysOpen disables the secret-dependent monitoring window:
	// states are collected over the whole execution (the §6.1 ablation).
	WindowAlwaysOpen bool

	// arenas are the two recycled execution slots Execute alternates
	// between; see Execute for the aliasing contract.
	arenas   [2]execArena
	arenaIdx int
	// halt is the cached halt-others program (undecodable address).
	halt *isa.Program
}

// execArena holds the buffers one Execute slot recycles across runs: the
// returned Execution value itself, the victim and attacker commit logs, the
// snapshot, and the built programs. After warmup, a run through the slot
// allocates nothing.
type execArena struct {
	ex     Execution
	log    []uarch.CommitRecord
	attLog []uarch.CommitRecord
	snap   monitor.Snapshot
	prog   isa.Program
	att    isa.Program
}

// NewDUT analyzes and instruments a SoC. Similarity matching for persistent
// contention uses cacheline granularity.
func NewDUT(soc *uarch.SoC) *DUT {
	return NewDUTWithAnalysis(soc, trace.Analyze(soc.Net))
}

// NewDUTWithAnalysis instruments a SoC using an existing analysis of the
// same design. If the analysis was computed on a different (but identically
// elaborated) netlist instance, it is rebound onto this SoC's netlist by
// dense signal id — the path parallel campaigns use to analyze once and
// share the result across every worker and fault-recovery replacement.
func NewDUTWithAnalysis(soc *uarch.SoC, a *trace.Analysis) *DUT {
	key := a
	if a.Netlist != soc.Net {
		a = a.Rebind(soc.Net)
	}
	m := monitor.New(a, monitor.Config{
		SimilarityMask: ^uint64(uarch.LineBytes - 1),
		Placement:      monitorPlacement(key, a),
	})
	d := &DUT{SoC: soc, Analysis: a, Mon: m}
	for _, c := range soc.Cores {
		c.SetWindowObserver(&windowGate{d})
	}
	soc.Mem.SetPrivRange(PrivBase, PrivLimit)
	return d
}

// SharedAnalysisFactory wraps a SoC constructor into a DUT factory that runs
// the contention-point analysis exactly once and rebinds it to every
// subsequently elaborated SoC. It is safe for concurrent use; parallel
// engines build workers concurrently.
func SharedAnalysisFactory(newSoC func() *uarch.SoC) func() *DUT {
	var (
		mu     sync.Mutex
		shared *trace.Analysis
	)
	return func() *DUT {
		soc := newSoC()
		mu.Lock()
		if shared == nil {
			shared = trace.Analyze(soc.Net)
		}
		a := shared
		mu.Unlock()
		return NewDUTWithAnalysis(soc, a)
	}
}

// windowGate forwards the cores' window transitions to the monitor unless
// the whole-run ablation pins the window open.
type windowGate struct{ d *DUT }

// SetWindow implements uarch.WindowObserver.
func (g *windowGate) SetWindow(open bool) {
	if g.d.WindowAlwaysOpen {
		g.d.Mon.SetWindow(true)
		return
	}
	g.d.Mon.SetWindow(open)
}

// Execution is the observable outcome of one testcase run under one secret.
type Execution struct {
	// Log is the victim core's commit log.
	Log []uarch.CommitRecord
	// AttackerLog is the second core's commit log (dual-core scenario).
	AttackerLog []uarch.CommitRecord
	// Snap is the contention-state snapshot within the monitoring window.
	Snap *monitor.Snapshot
	// Cycles is the total cycle count of the run.
	Cycles int64
}

// Execute resets the DUT, installs the secret, and runs the testcase to
// completion under the given secret value.
//
// The returned Execution and everything it references live in one of two
// recycled arenas: a result stays valid across exactly one subsequent
// Execute on the same DUT (the dual-secret A/B pattern every caller uses)
// and is overwritten by the one after that. Callers that need longer-lived
// data must copy it out, as package detect does. Steady-state runs on a
// warm DUT perform no heap allocations.
//
//sonar:alloc-free
func (d *DUT) Execute(tc *Testcase, secret uint64) *Execution {
	ar := &d.arenas[d.arenaIdx]
	d.arenaIdx = 1 - d.arenaIdx

	d.SoC.Reset()
	d.Mon.Reset()
	if d.WindowAlwaysOpen {
		d.Mon.SetWindow(true)
	}
	d.SoC.Mem.Write(SecretAddr, secret, 8)

	sStart, sEnd := tc.BuildInto(&ar.prog)
	victim := d.SoC.Cores[0]
	victim.CommitLog = ar.log[:0] // give the core this slot's private log
	victim.LoadProgram(&ar.prog)
	victim.SetSecretRange(sStart, sEnd)

	runAttacker := len(d.SoC.Cores) > 1 && len(tc.Attacker) > 0
	if len(d.SoC.Cores) > 1 {
		if runAttacker {
			tc.BuildAttackerInto(&ar.att)
			d.SoC.Cores[1].CommitLog = ar.attLog[:0]
			d.SoC.Cores[1].LoadProgram(&ar.att)
		} else {
			d.haltOthers()
		}
	}
	cycles := d.SoC.Run()
	ar.log = victim.CommitLog // the run may have grown the buffer
	d.Mon.SnapshotInto(&ar.snap)

	ex := &ar.ex
	*ex = Execution{Log: ar.log, Snap: &ar.snap, Cycles: cycles}
	if runAttacker {
		ar.attLog = d.SoC.Cores[1].CommitLog
		ex.AttackerLog = ar.attLog
	}
	return ex
}

func (d *DUT) haltOthers() {
	if d.halt == nil {
		// An empty program at an undecodable address halts immediately.
		d.halt = isa.NewProgram(0xF_0000, isa.Instr{Op: isa.ECALL})
	}
	for _, c := range d.SoC.Cores[1:] {
		c.LoadProgram(d.halt)
	}
}
