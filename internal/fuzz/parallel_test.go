package fuzz

import (
	"math/rand"
	"reflect"
	"testing"

	"sonar/internal/uarch"
)

func liteFactory() *DUT {
	return NewDUT(uarch.NewSoC(uarch.BoomConfig(), 1, nil, nil))
}

// statsEqual compares everything a campaign reports except the finding
// pointers themselves.
func statsEqual(t *testing.T, a, b *Stats) {
	t.Helper()
	if len(a.PerIteration) != len(b.PerIteration) {
		t.Fatalf("iteration counts differ: %d vs %d", len(a.PerIteration), len(b.PerIteration))
	}
	for i := range a.PerIteration {
		if a.PerIteration[i] != b.PerIteration[i] {
			t.Fatalf("iteration %d differs: %+v vs %+v", i, a.PerIteration[i], b.PerIteration[i])
		}
	}
	if !reflect.DeepEqual(a.TriggeredPoints, b.TriggeredPoints) {
		t.Fatal("TriggeredPoints sets differ")
	}
	if a.CorpusSize != b.CorpusSize {
		t.Fatalf("CorpusSize %d vs %d", a.CorpusSize, b.CorpusSize)
	}
	if a.ExecutedCycles != b.ExecutedCycles {
		t.Fatalf("ExecutedCycles %d vs %d", a.ExecutedCycles, b.ExecutedCycles)
	}
	if len(a.Findings) != len(b.Findings) {
		t.Fatalf("finding counts differ: %d vs %d", len(a.Findings), len(b.Findings))
	}
}

// The determinism contract of the serial engine: equal seeds give equal
// campaigns, down to the triggered-point set and corpus size.
func TestSerialCampaignDeterministic(t *testing.T) {
	opt := SonarOptions(25)
	opt.Seed = 42
	a := Run(liteFactory(), opt)
	b := Run(liteFactory(), opt)
	statsEqual(t, a, b)
}

// Workers=1 must reproduce the legacy serial campaign exactly: same
// trajectory, same triggered points, same corpus, same cycle count.
func TestParallelWorkers1MatchesSerial(t *testing.T) {
	for _, batch := range []int{0, 1, 7} {
		opt := SonarOptions(30)
		opt.Workers = 1
		opt.BatchSize = batch
		serial := Run(liteFactory(), SonarOptions(30))
		parallel := RunParallel(liteFactory, opt)
		statsEqual(t, serial, parallel)
	}
}

// A fixed worker count must be reproducible across runs.
func TestParallelReproducibleWorkers4(t *testing.T) {
	opt := SonarOptions(40)
	opt.Workers = 4
	opt.BatchSize = 5
	a := RunParallel(liteFactory, opt)
	b := RunParallel(liteFactory, opt)
	statsEqual(t, a, b)
	if len(a.PerIteration) != 40 {
		t.Fatalf("parallel campaign recorded %d iterations, want 40", len(a.PerIteration))
	}
	last := 0
	for _, it := range a.PerIteration {
		if it.CumPoints < last {
			t.Fatal("cumulative triggered points decreased")
		}
		last = it.CumPoints
	}
	if last == 0 {
		t.Error("parallel campaign triggered nothing")
	}
}

// The worker clamp: more workers than iterations must not hang or drop
// iterations.
func TestParallelMoreWorkersThanIterations(t *testing.T) {
	opt := SonarOptions(3)
	opt.Workers = 8
	st := RunParallel(liteFactory, opt)
	if len(st.PerIteration) != 3 {
		t.Fatalf("iterations = %d, want 3", len(st.PerIteration))
	}
}

// The random baseline retains nothing, also through the parallel engine.
func TestParallelRandomBaselineRetainsNothing(t *testing.T) {
	opt := RandomOptions(8)
	opt.Workers = 2
	if st := RunParallel(liteFactory, opt); st.CorpusSize != 0 {
		t.Errorf("random baseline corpus size = %d, want 0", st.CorpusSize)
	}
}

// Dual-core campaigns must survive the parallel engine (exercised under
// -race in CI).
func TestParallelDualCore(t *testing.T) {
	mk := func() *DUT { return NewDUT(uarch.NewSoC(uarch.BoomConfig(), 2, nil, nil)) }
	opt := SonarOptions(8)
	opt.DualCore = true
	opt.Workers = 2
	opt.BatchSize = 2
	st := RunParallel(mk, opt)
	if len(st.PerIteration) != 8 {
		t.Fatal("dual-core parallel campaign did not complete")
	}
	if st.PerIteration[7].CumPoints == 0 {
		t.Error("dual-core parallel campaign triggered nothing")
	}
}

// Regression for the dual-core detection fallback: a testcase without an
// attacker program must never have its (empty) attacker logs analyzed, even
// when the executions carry leftover attacker-log contents that would
// otherwise read as a timing difference.
func TestAnalyzeExecutionsSkipsEmptyAttacker(t *testing.T) {
	victim := []uarch.CommitRecord{{Idx: 0, Cycle: 0}, {Idx: 1, Cycle: 5}, {Idx: 2, Cycle: 10}}
	attA := []uarch.CommitRecord{{Idx: 0, Cycle: 0}, {Idx: 1, Cycle: 5}, {Idx: 2, Cycle: 10}}
	attB := []uarch.CommitRecord{{Idx: 0, Cycle: 0}, {Idx: 1, Cycle: 5}, {Idx: 2, Cycle: 30}}
	exA := &Execution{Log: victim, AttackerLog: attA}
	exB := &Execution{Log: victim, AttackerLog: attB}

	if f := analyzeExecutions(&Testcase{}, exA, exB); f != nil {
		t.Errorf("attacker-less testcase produced a finding from attacker logs: %v", f)
	}
	rng := rand.New(rand.NewSource(1))
	withAttacker := Generate(rng, true)
	if f := analyzeExecutions(withAttacker, exA, exB); f == nil {
		t.Error("attacker-carrying testcase ignored a real attacker-side timing difference")
	}
}

// A dual-core campaign whose testcases carry no attacker (DualCore unset on
// a two-core SoC: the second core is halted) must report no findings beyond
// what the victim logs justify — i.e. the empty attacker logs contribute
// nothing.
func TestDualCoreCampaignWithoutAttackersUsesVictimLogsOnly(t *testing.T) {
	d := NewDUT(uarch.NewSoC(uarch.BoomConfig(), 2, nil, nil))
	opt := SonarOptions(6) // DualCore false: every testcase is attacker-less
	st := Run(d, opt)
	single := Run(liteFactory(), opt)
	if got, want := st.PerIteration[5].CumTimingDiffs, single.PerIteration[5].CumTimingDiffs; got != want {
		t.Errorf("attacker-less dual-core campaign found %d timing diffs, single-core found %d", got, want)
	}
}

// Fresh testcases must enter the corpus with both mutation directions
// represented; a fixed +1 would permanently bias directed mutation toward
// chain growth (§6.2.1's adaptive strategy explores both).
func TestFreshSeedDirectionsUnbiased(t *testing.T) {
	d := liteFactory()
	dirs := map[int]int{}
	for seed := int64(0); seed < 16; seed++ {
		w := newWorker(d, SonarOptions(1), rand.New(rand.NewSource(seed)))
		w.runOne() // first iteration always generates a fresh testcase
		for _, s := range w.corpus.seeds {
			dirs[s.Dir]++
		}
	}
	if dirs[+1] == 0 || dirs[-1] == 0 {
		t.Errorf("initial seed directions biased: %v", dirs)
	}
}
