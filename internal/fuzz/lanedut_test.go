package fuzz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sonar/internal/hdl"
	"sonar/internal/hdl/gen"
	"sonar/internal/monitor"
	"sonar/internal/obs"
)

// netTestCfg is the generated design the netlist-DUT determinism tests run
// against: small enough to execute quickly, with arbiters (so contention
// points exist and trigger) and a prim share (so the lane evaluator's
// scalar-spill path is exercised, not just the pure mux/buffer fast path).
var netTestCfg = gen.Config{Seed: 5, Nodes: 48, Regs: 5, Arbiters: 3, PrimShare: 0.25}

// netTestCycles keeps per-execution simulation short for test speed.
const netTestCycles = 64

func netExecFactory(t testing.TB) func() Executor {
	t.Helper()
	f, err := LaneDUTFactory(func() (*hdl.Netlist, error) { return gen.New(netTestCfg) }, netTestCycles, 8)
	if err != nil {
		t.Fatalf("LaneDUTFactory: %v", err)
	}
	return f
}

// snapEqual compares two snapshots by observable content. Point is compared
// by ID, not pointer: the scalar and lane paths of a LaneDUT run distinct
// netlist instances, so the *trace.Point pointers differ while the campaign-
// visible record must not.
func snapEqual(t *testing.T, label string, a, b *monitor.Snapshot) {
	t.Helper()
	if len(a.Points) != len(b.Points) {
		t.Fatalf("%s: point counts differ: %d vs %d", label, len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		pa, pb := &a.Points[i], &b.Points[i]
		if pa.Point.ID != pb.Point.ID {
			t.Fatalf("%s: point %d id %d vs %d", label, i, pa.Point.ID, pb.Point.ID)
		}
		if pa.MinIntvlDistinct != pb.MinIntvlDistinct || pa.MinIntvlSame != pb.MinIntvlSame ||
			pa.EventCount != pb.EventCount || pa.Digest != pb.Digest ||
			pa.VolatileContention != pb.VolatileContention ||
			pa.PersistentCandidate != pb.PersistentCandidate {
			t.Fatalf("%s: point %d state differs:\n%+v\nvs\n%+v", label, i, *pa, *pb)
		}
		if !reflect.DeepEqual(pa.Events, pb.Events) {
			t.Fatalf("%s: point %d event logs differ:\n%v\nvs\n%v", label, i, pa.Events, pb.Events)
		}
	}
}

// TestLaneDUTGroupMatchesScalar is the substrate-level half of the netlist
// determinism contract: for the same testcases and secrets, ExecuteGroup
// must produce identical per-pair snapshots whether the group runs through
// the scalar reference simulator (chunk 1), partial lane passes (chunk 7),
// or one full-width bit-parallel pass (chunk 64). Execute (the Executor
// scalar path) must agree too.
func TestLaneDUTGroupMatchesScalar(t *testing.T) {
	factory := netExecFactory(t)
	ref := factory().(*LaneDUT)
	rng := rand.New(rand.NewSource(7))
	tcs := make([]*Testcase, ref.GroupWidth())
	for i := range tcs {
		tcs[i] = Generate(rng, true)
	}
	const secretA, secretB = 0, 1

	refPairs := ref.ExecuteGroup(tcs, secretA, secretB, 1, nil)
	if len(refPairs) != len(tcs) {
		t.Fatalf("chunk=1: %d pairs for %d testcases", len(refPairs), len(tcs))
	}
	for _, chunk := range []int{2, 7, 64} {
		d := factory().(*LaneDUT)
		pairs := d.ExecuteGroup(tcs, secretA, secretB, chunk, nil)
		if len(pairs) != len(refPairs) {
			t.Fatalf("chunk=%d: %d pairs, want %d", chunk, len(pairs), len(refPairs))
		}
		for i := range pairs {
			snapEqual(t, fmt.Sprintf("chunk=%d pair=%d A", chunk, i), refPairs[i].A.Snap, pairs[i].A.Snap)
			snapEqual(t, fmt.Sprintf("chunk=%d pair=%d B", chunk, i), refPairs[i].B.Snap, pairs[i].B.Snap)
			if pairs[i].A.Cycles != refPairs[i].A.Cycles || pairs[i].B.Cycles != refPairs[i].B.Cycles {
				t.Fatalf("chunk=%d pair=%d cycle counts differ", chunk, i)
			}
		}
	}

	// The direct Executor path agrees with the grouped scalar path.
	d := factory().(*LaneDUT)
	exA := d.Execute(tcs[0], secretA)
	exB := d.Execute(tcs[0], secretB)
	snapEqual(t, "Execute A", refPairs[0].A.Snap, exA.Snap)
	snapEqual(t, "Execute B", refPairs[0].B.Snap, exB.Snap)
}

// TestNetlistLaneMatrix extends the TestLaneMatrix contract to netlist-backed
// campaigns: for a fixed (Seed, Workers, BatchSize) over an hdl/gen design,
// the campaign's Stats, merged event stream, and checkpoint bytes must be
// identical at every Lanes setting — the lane width only decides how many
// testcase pairs share a simulator pass, never what any of them observe.
// CI runs this under -race as the netlist-DUT leg of the lane-determinism
// matrix.
func TestNetlistLaneMatrix(t *testing.T) {
	factory := netExecFactory(t)
	type result struct {
		stats  *Stats
		stream []byte
		ckpt   []byte
	}
	run := func(lanes, workers int) result {
		opt := SonarOptions(24)
		opt.Workers = workers
		opt.BatchSize = 5
		opt.Lanes = lanes
		opt.CheckpointEvery = 10
		opt.Checkpoint = filepath.Join(t.TempDir(), "net.ckpt")
		opt, mem := observedOptions(opt)
		stats := RunParallelExec(factory, opt)
		ckpt, err := os.ReadFile(opt.Checkpoint)
		if err != nil {
			t.Fatalf("read checkpoint: %v", err)
		}
		return result{stats: stats, stream: mem.Bytes(), ckpt: ckpt}
	}
	baseline := map[int]result{}
	for _, workers := range []int{1, 4} {
		baseline[workers] = run(1, workers)
		if len(baseline[workers].stream) == 0 {
			t.Fatalf("workers=%d: no events emitted", workers)
		}
		if len(baseline[workers].stats.TriggeredPoints) == 0 {
			t.Fatalf("workers=%d: campaign triggered no contention points", workers)
		}
	}
	for _, lanes := range []int{1, 7, 64} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("lanes=%d/workers=%d", lanes, workers), func(t *testing.T) {
				got := run(lanes, workers)
				want := baseline[workers]
				statsEqual(t, want.stats, got.stats)
				statsWireEqual(t, want.stats, got.stats)
				if !bytes.Equal(got.stream, want.stream) {
					t.Error("event stream differs from lanes=1 baseline")
				}
				if !bytes.Equal(got.ckpt, want.ckpt) {
					t.Error("checkpoint bytes differ from lanes=1 baseline")
				}
			})
		}
	}
}

// TestNetlistCampaignPublishesCompileGauges pins the sim observability
// contract: a netlist-backed campaign with an Observer publishes the
// optimizer's spilled/eliminated node gauges (docs/SERVICE.md), which
// behavioral campaigns leave absent.
func TestNetlistCampaignPublishesCompileGauges(t *testing.T) {
	factory := netExecFactory(t)
	opt := SonarOptions(8)
	opt.Workers = 2
	opt.BatchSize = 4
	opt.Observer = obs.New()
	RunParallelExec(factory, opt)
	series, err := obs.ParseExposition(opt.Observer.Metrics.ExpositionText())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := series[obs.MetricSimSpilled]; !ok {
		t.Errorf("%s not published by netlist campaign", obs.MetricSimSpilled)
	}
	if series[obs.MetricSimSpilled] == 0 {
		t.Errorf("%s = 0 on a PrimShare %.2f design", obs.MetricSimSpilled, netTestCfg.PrimShare)
	}
	if series[obs.MetricSimEliminated] == 0 {
		t.Errorf("%s = 0; optimizer removed nothing", obs.MetricSimEliminated)
	}

	bopt := SonarOptions(4)
	bopt.Observer = obs.New()
	RunParallel(liteFactory, bopt)
	series, err = obs.ParseExposition(bopt.Observer.Metrics.ExpositionText())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := series[obs.MetricSimSpilled]; ok {
		t.Errorf("behavioral campaign published %s", obs.MetricSimSpilled)
	}
}

// TestNetlistLeaseReExecution pins lease determinism on the lane path: a
// shard lease over a netlist DUT executed twice — and at different lane
// widths — returns byte-identical wire results, so a distributed campaign
// may re-execute a lost lane-group lease on any worker configuration.
func TestNetlistLeaseReExecution(t *testing.T) {
	factory := netExecFactory(t)
	opt := SonarOptions(20)
	opt.Workers = 2
	opt.BatchSize = 5
	lc := NewLeaseCoordinator(factory(), opt)
	shards := lc.OpenShards()
	if len(shards) == 0 {
		t.Fatal("no open shards")
	}
	l, err := lc.Lease(shards[0])
	if err != nil {
		t.Fatalf("Lease: %v", err)
	}
	var wires [][]byte
	for _, lanes := range []int{1, 7, 64, 64} {
		res, err := ExecuteLeaseExec(factory, lc.Shape(), lanes, l)
		if err != nil {
			t.Fatalf("ExecuteLeaseExec(lanes=%d): %v", lanes, err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal result: %v", err)
		}
		wires = append(wires, b)
	}
	for i := 1; i < len(wires); i++ {
		if !bytes.Equal(wires[0], wires[i]) {
			t.Errorf("lease re-execution %d produced different wire bytes", i)
		}
	}
}
