package fuzz

import (
	"testing"

	"sonar/internal/detect"
	"sonar/internal/isa"
	"sonar/internal/uarch"
)

// statsAccum edge cases: the fold is shared by both engines, so these pin
// the exact semantics the parallel merge relies on.

// A finding without any newly triggered point (the contention was already
// known from an earlier iteration) must advance the timing-diff series but
// not the coverage series.
func TestApplyFindingWithoutNewPoint(t *testing.T) {
	d := liteFactory()
	acc := newStatsAccum(d.Analysis, SonarOptions(10))
	acc.apply(outcome{tc: &Testcase{}, finding: &detect.Finding{}, cycles: 7})

	st := acc.st
	if got := st.PerIteration[0]; got.NewPoints != 0 || got.CumPoints != 0 || got.CumTimingDiffs != 1 {
		t.Errorf("IterStats = %+v, want NewPoints=0 CumPoints=0 CumTimingDiffs=1", got)
	}
	if len(st.Findings) != 1 || len(st.FindingSeeds) != 1 {
		t.Errorf("findings = %d/%d seeds, want 1/1", len(st.Findings), len(st.FindingSeeds))
	}
	if st.ExecutedCycles != 7 {
		t.Errorf("ExecutedCycles = %d, want 7", st.ExecutedCycles)
	}
	// The iteration is within the early window, so a breakdown entry is
	// recorded even though nothing triggered.
	if len(st.EarlyBreakdown) != 1 || st.EarlyBreakdown[0] != [2]int{0, 0} {
		t.Errorf("EarlyBreakdown = %v, want [[0 0]]", st.EarlyBreakdown)
	}
}

// Two outcomes triggering the same point — as two workers in one batch
// round will — must count it once, with the duplicate's NewPoints at zero.
func TestApplyDuplicateTriggerAcrossOutcomes(t *testing.T) {
	d := liteFactory()
	id := d.Analysis.Monitored()[0].ID
	acc := newStatsAccum(d.Analysis, SonarOptions(10))
	acc.apply(outcome{tc: &Testcase{}, triggered: []int{id, id}})
	acc.apply(outcome{tc: &Testcase{}, triggered: []int{id}})

	st := acc.st
	if st.PerIteration[0].NewPoints != 1 || st.PerIteration[0].CumPoints != 1 {
		t.Errorf("first outcome: %+v, want NewPoints=1 CumPoints=1", st.PerIteration[0])
	}
	if st.PerIteration[1].NewPoints != 0 || st.PerIteration[1].CumPoints != 1 {
		t.Errorf("duplicate outcome: %+v, want NewPoints=0 CumPoints=1", st.PerIteration[1])
	}
	if len(st.TriggeredPoints) != 1 {
		t.Errorf("TriggeredPoints = %v, want exactly {%d}", st.TriggeredPoints, id)
	}
	if st.EarlyTriggered != 1 {
		t.Errorf("EarlyTriggered = %d, want 1", st.EarlyTriggered)
	}
}

// KeepFindings caps the retained finding list but never the timing-diff
// count.
func TestApplyKeepFindingsCapsRetention(t *testing.T) {
	opt := SonarOptions(10)
	opt.KeepFindings = 1
	acc := newStatsAccum(liteFactory().Analysis, opt)
	acc.apply(outcome{tc: &Testcase{}, finding: &detect.Finding{}})
	acc.apply(outcome{tc: &Testcase{}, finding: &detect.Finding{}})

	if got := len(acc.st.Findings); got != 1 {
		t.Errorf("retained findings = %d, want 1 (capped)", got)
	}
	if got := acc.st.PerIteration[1].CumTimingDiffs; got != 2 {
		t.Errorf("CumTimingDiffs = %d, want 2 (uncapped)", got)
	}
}

// The empty-attacker-log path: a testcase that carries an attacker program
// whose logs are empty (e.g. the attacker never committed inside the run)
// must not synthesize a finding from the empty logs.
func TestApplyEmptyAttackerLogs(t *testing.T) {
	victim := []uarch.CommitRecord{{Idx: 0, Cycle: 0}, {Idx: 1, Cycle: 5}}
	exA := &Execution{Log: victim}
	exB := &Execution{Log: victim}
	tc := &Testcase{Attacker: []isa.Instr{{Op: isa.ADDI}}}
	if f := analyzeExecutions(tc, exA, exB); f != nil {
		t.Errorf("empty attacker logs produced a finding: %v", f)
	}
}
