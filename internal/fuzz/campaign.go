package fuzz

import (
	"math/rand"
	"time"

	"sonar/internal/detect"
	"sonar/internal/hdl"
	"sonar/internal/monitor"
	"sonar/internal/obs"
	"sonar/internal/trace"
)

// Options configures a fuzzing campaign. The three strategy switches map to
// the paper's breakdown experiment (Figure 10): retention ⊂ selection ⊂
// directed mutation; with all three off the campaign degenerates to the
// random-testing baseline of Figure 8.
type Options struct {
	// Iterations is the number of testcases to execute.
	Iterations int
	// Seed seeds the campaign's RNG; equal seeds give equal campaigns.
	Seed int64
	// Retention keeps interval-reducing testcases in the corpus (§6.2.1 ①).
	Retention bool
	// Selection prioritizes seeds closest to triggering (§6.2.1 ②);
	// implies Retention.
	Selection bool
	// DirectedMutation applies the adaptive interval-guided chain mutation
	// (§6.2.1 ③); implies Selection.
	DirectedMutation bool
	// DualCore also generates attacker programs for the second core
	// (template Figure 4b). Requires a two-core DUT.
	DualCore bool
	// SecretA and SecretB are the two secret values each testcase runs
	// under.
	SecretA, SecretB uint64
	// KeepFindings caps the retained finding list (0 = keep all).
	KeepFindings int
	// RandomDirection disables the adaptive direction memory of the
	// directed mutation: each retained seed gets a random direction
	// instead of inheriting/flipping based on the previous mutation's
	// effect — the ablation of §6.2.1's "adaptive directed mutation".
	RandomDirection bool
	// Workers is the number of campaign shards RunParallel executes
	// concurrently, each on a private DUT. 0 or 1 keeps the legacy serial
	// behaviour; Run ignores this field.
	Workers int
	// BatchSize is the number of iterations each worker executes between
	// two corpus merges in RunParallel (0 = a sensible default). Smaller
	// batches tighten the feedback loop; larger ones reduce
	// synchronization overhead.
	BatchSize int
	// Lanes is the evaluator batch width: how many testcases a worker
	// groups into one logical lane batch, clamped to [1, hdl.Lanes].
	// 0 or 1 is the scalar path. Netlist-evaluation backends
	// (sim.LaneSimulator with monitor.LaneBank) execute a full lane group
	// bit-parallel, one testcase per bit of every plane word; the
	// behavioral DUT models (boom/nutshell direct-drive) cannot be
	// bit-sliced and execute the group's lanes through the scalar path in
	// ascending lane order — the campaign-level analog of the lane
	// evaluator's prim scalar spill (docs/SIMULATOR.md). Demuxed outcomes
	// are folded in canonical lane order either way, so Stats,
	// PerIteration, checkpoints, and the event stream are byte-identical
	// for a fixed (Seed, Workers, BatchSize) across every Lanes setting —
	// the contract TestLaneMatrix pins. Lanes is therefore an operational
	// knob, not part of the checkpoint Shape.
	Lanes int
	// Observer receives campaign metrics and structured events (package
	// obs). nil disables observability at near-zero hot-path cost. Events
	// are emitted only under the campaign coordinator in canonical
	// iteration order — worker goroutines touch atomic metrics only — so
	// attaching an Observer never perturbs the campaign itself, and the
	// event stream of a parallel campaign is byte-identical across runs
	// for a fixed (Seed, Workers, BatchSize).
	Observer *obs.Observer

	// The remaining fields form the durability surface of the parallel
	// engine (docs/CAMPAIGNS.md); Run ignores them, and core.Sonar.Fuzz
	// routes campaigns that use them through RunParallel (Workers <= 1
	// still reproduces the serial campaign exactly).

	// Checkpoint, when non-empty, is the file periodic campaign snapshots
	// are written to (atomically, via temp-file+rename) at batch-merge
	// barriers. A checkpoint restores through Resume into a campaign
	// bit-identical to an uninterrupted run for the same (Seed, Workers,
	// BatchSize).
	Checkpoint string
	// CheckpointEvery is the iteration period between checkpoints
	// (0 = defaultCheckpointEvery). Checkpoints are cut at the first merge
	// barrier at or past each multiple; a final checkpoint always marks
	// campaign completion.
	CheckpointEvery int
	// MaxRounds, when positive, pauses the campaign after that many merge
	// rounds of this run: a checkpoint is written (when Checkpoint is set)
	// and the partial Stats are returned without a campaign_end event, so
	// a later Resume byte-continues the event stream. Time-sliced
	// campaigns on shared hosts are the intended use.
	MaxRounds int
	// IterTimeout is the per-iteration deadline for parallel workers; a
	// batch of n iterations is aborted after n*IterTimeout and retried on
	// a replacement worker, recovering campaigns from wedged simulations.
	// 0 disables the deadline (worker panics are still recovered).
	IterTimeout time.Duration
	// MaxRetries is the number of replacement-worker retries after a
	// failed (panicked or timed-out) batch before the shard is abandoned
	// (0 = default 2, negative = no retries). A retried batch replays from
	// the shard's pre-batch RNG cursor and corpus snapshot, so recovered
	// campaigns match the fault-free run exactly.
	MaxRetries int
	// RetryBackoff is the base delay before a batch retry, doubled per
	// attempt and capped at 16x (0 = default 50ms). Backoff only delays
	// wall-clock recovery; it never affects campaign results.
	RetryBackoff time.Duration
	// FaultHook, when non-nil, is invoked by parallel workers before every
	// iteration — the seam the deterministic fault-injection harness
	// (package faultinject) uses to schedule worker panics and stalls.
	// Production campaigns leave it nil.
	FaultHook FaultHook
}

// FaultHook is the fault-injection seam of the parallel engine: workers
// call BeforeIteration(worker, round, iter) before each iteration of a
// batch, from the worker goroutine. Implementations may panic or block to
// exercise the engine's recovery paths; package faultinject provides
// deterministic schedules. Implementations must be safe for concurrent use.
type FaultHook interface {
	// BeforeIteration is called with the worker index, the 1-based merge
	// round, and the 0-based iteration index within the current batch.
	BeforeIteration(worker, round, iter int)
}

// SonarOptions returns the full Sonar strategy set.
func SonarOptions(iterations int) Options {
	return Options{
		Iterations: iterations, Seed: 1,
		Retention: true, Selection: true, DirectedMutation: true,
		SecretA: 0, SecretB: 1,
	}
}

// RandomOptions returns the unguided random-testing baseline ("Sonar
// without any guidance", Figure 8).
func RandomOptions(iterations int) Options {
	return Options{Iterations: iterations, Seed: 1, SecretA: 0, SecretB: 1}
}

// IterStats is the cumulative progress after one iteration, the series
// plotted in Figures 8, 10 and 11.
type IterStats struct {
	// Iteration is 1-based.
	Iteration int
	// NewPoints is the number of contention points newly triggered by this
	// testcase.
	NewPoints int
	// CumPoints is the cumulative number of distinct triggered points.
	CumPoints int
	// CumTimingDiffs is the cumulative number of testcases exposing a
	// secret-dependent timing difference.
	CumTimingDiffs int
}

// Stats is the result of a campaign.
type Stats struct {
	// PerIteration is the progress series, indexed by the campaign's
	// canonical iteration order: execution order for Run, and the
	// coordinator's fold order for RunParallel (each batch round folds
	// workers in worker order), which is NOT wall-clock completion order —
	// worker w's k-th batch entry occupies the same slot on every run.
	// Both engines guarantee len(PerIteration) == Options.Iterations
	// (TestPerIterationLengthMatchesIterations pins this).
	PerIteration []IterStats
	// Findings are the detected side channels (dual-differential verified).
	Findings []*detect.Finding
	// FindingSeeds are the testcases that exposed each retained finding
	// (parallel to Findings); export them with Testcase.Marshal.
	FindingSeeds []*Testcase
	// TriggeredPoints is the final set of triggered contention point IDs.
	TriggeredPoints map[int]bool
	// SingleValidTriggered counts points triggered within the first 20
	// testcases whose requests are dominated by a single valid signal
	// (paper Figure 9); EarlyTriggered is the total in that window.
	SingleValidTriggered int
	// EarlyTriggered is the total number of points triggered within the
	// first 20 testcases (the Figure 9 window).
	EarlyTriggered int
	// EarlyBreakdown records, for each of the first 20 testcases, how many
	// newly triggered points were single-valid dominated vs not (the bars
	// of paper Figure 9).
	EarlyBreakdown [][2]int
	// CorpusSize is the final seed corpus size.
	CorpusSize int
	// ExecutedCycles is the total simulated cycle count.
	ExecutedCycles int64
}

// worker owns one shard of a campaign: a private DUT, an RNG stream, and a
// corpus view. The serial Run is a single worker drained to completion;
// RunParallel runs several concurrently and merges their feedback between
// batches.
type worker struct {
	// id is the worker's shard index (0 for the serial engine) — the value
	// fault events and the FaultHook report.
	id        int
	d         Executor
	rng       *rand.Rand
	corpus    *Corpus
	opt       Options
	retention bool
	selection bool
	// src is the counted RNG source behind rng for shard workers; its
	// cursor is the worker's serializable RNG position (nil for the serial
	// engine, which never checkpoints).
	src *countedSource
	// newSeeds are the seeds retained since the last takeNewSeeds call —
	// the delta the parallel coordinator re-offers to the global corpus.
	newSeeds []*Seed
	// mutOffered and mutAccepted batch the retention-decision metrics: the
	// hot loop counts locally and flushMutationMetrics publishes one
	// atomic update per batch instead of several per iteration.
	mutOffered, mutAccepted int
	// forceIntvls makes runOne populate outcome.intvls even without local
	// retention or a local Observer. Lease workers (ExecuteLease) set it:
	// the coordinating server always attaches an Observer, and the interval
	// feedback must travel with the outcome for its fold to match a local
	// observed run byte-for-byte.
	forceIntvls bool
	// pending, tcs, and pairs are the grouped-execution scratch buffers of
	// runBatchGrouped, recycled across groups so the GroupExecutor hot loop
	// stays allocation-free after warmup.
	pending []pendingIter
	tcs     []*Testcase
	pairs   []ExecPair
}

func newWorker(d Executor, opt Options, rng *rand.Rand) *worker {
	return &worker{
		d: d, rng: rng, corpus: NewCorpus(), opt: opt,
		retention: opt.Retention || opt.Selection || opt.DirectedMutation,
		selection: opt.Selection || opt.DirectedMutation,
	}
}

// newShardWorker builds a parallel shard worker whose RNG is a counted
// source seeded with opt.Seed+id and fast-forwarded to cursor. A cursor of
// zero gives the exact draw sequence of rand.New(rand.NewSource(opt.Seed+id))
// — the parallel determinism contract — and a checkpointed cursor restores
// the worker's mid-campaign RNG position.
func newShardWorker(id int, d Executor, opt Options, cursor uint64) *worker {
	src := newCountedSource(opt.Seed+int64(id), cursor)
	w := newWorker(d, opt, rand.New(src))
	w.id = id
	w.src = src
	return w
}

// outcome is one iteration's contribution to campaign statistics, in a form
// the coordinator can fold into Stats in canonical order.
type outcome struct {
	tc        *Testcase
	triggered []int
	finding   *detect.Finding
	cycles    int64
	// intvls is the merged per-point best reqsIntvl of the dual execution.
	// It is populated when retention needs it or an Observer is attached
	// (the per-point best-interval metrics), and nil otherwise.
	intvls map[int]int64
}

// pendingIter is one prepared-but-not-executed iteration: the testcase and
// the selection context its feedback phase needs. It decouples the RNG draws
// of generation (prepare) from those of feedback (finish) so grouped
// executors can run whole lane groups between the two phases.
type pendingIter struct {
	tc     *Testcase
	parent *Seed
	target int
}

// prepare draws one iteration's testcase: generate, or select-and-mutate
// from the corpus. All generation-side RNG draws happen here, in exactly the
// order the pre-split runOne used.
func (w *worker) prepare() pendingIter {
	var tc *Testcase
	var parent *Seed
	target := -1
	if w.retention && w.corpus.Len() > 0 && w.rng.Float64() < 0.7 {
		parent, target = w.corpus.Select(w.rng, w.selection)
		if w.opt.DirectedMutation {
			tc = MutateDirected(parent, w.rng)
		} else {
			tc = MutateRandom(parent, w.rng)
		}
	} else {
		tc = Generate(w.rng, w.opt.DualCore)
	}
	return pendingIter{tc: tc, parent: parent, target: target}
}

// runOne executes one fuzzing iteration: generate or mutate a testcase,
// double-execute it under both secrets, detect, and feed the corpus.
func (w *worker) runOne() outcome {
	p := w.prepare()
	exA := w.d.Execute(p.tc, w.opt.SecretA)
	exB := w.d.Execute(p.tc, w.opt.SecretB)
	return w.finish(p, exA, exB)
}

// finish folds one dual execution into an outcome and feeds the corpus. All
// feedback-side RNG draws happen here, in exactly the order the pre-split
// runOne used, so prepare+finish reproduce runOne's draw sequence bit for
// bit.
func (w *worker) finish(p pendingIter, exA, exB *Execution) outcome {
	tc, parent, target := p.tc, p.parent, p.target
	// Contention coverage: points triggered in either run, in execution
	// order (the accumulator deduplicates against the global set).
	out := outcome{
		tc:        tc,
		triggered: append(exA.Snap.Triggered(), exB.Snap.Triggered()...),
		finding:   analyzeExecutions(tc, exA, exB),
		cycles:    exA.Cycles + exB.Cycles,
	}

	if w.retention || w.forceIntvls || w.opt.Observer != nil {
		out.intvls = monitor.MergeMinIntervals(exA.Snap, exB.Snap)
	}

	// Feedback: retention + adaptive direction update.
	if w.retention {
		intvls := out.intvls
		dir := +1
		switch {
		case w.opt.RandomDirection:
			dir = 1 - 2*w.rng.Intn(2) // ablation: no direction memory
		case parent != nil:
			dir = parent.Dir
			if target >= 0 {
				oldV, okOld := parent.Intvls[target]
				newV, okNew := intvls[target]
				switch {
				case okNew && okOld && newV < oldV:
					// Improvement: keep direction.
				case okNew && !okOld:
					// First observation counts as progress.
				default:
					dir = -dir // no improvement: flip (adaptive, §6.2.1)
				}
			}
		default:
			// Fresh testcase: unbiased initial direction. A fixed +1 would
			// permanently skew the adaptive strategy toward chain growth;
			// §6.2.1 relies on both directions being explored.
			dir = 1 - 2*w.rng.Intn(2)
		}
		s := w.corpus.Offer(tc, intvls, dir, target)
		w.mutOffered++
		if s != nil {
			w.mutAccepted++
			w.newSeeds = append(w.newSeeds, s)
		}
	}
	return out
}

// runBatch executes n iterations of merge round `round`, appending their
// outcomes to dst in order (dst is the coordinator's recycled per-round
// scratch; retries pass nil and allocate fresh). The FaultHook seam fires
// before each iteration, from this (worker) goroutine — a scheduled panic
// or stall therefore surfaces exactly where a real worker fault would.
func (w *worker) runBatch(dst []outcome, n, round int) []outcome {
	if g, ok := w.d.(GroupExecutor); ok && g.GroupWidth() > 1 {
		dst = w.runBatchGrouped(g, dst, n, round)
		w.flushMutationMetrics()
		return dst
	}
	lanes := normalizeLanes(w.opt)
	for base := 0; base < n; base += lanes {
		group := lanes
		if base+group > n {
			group = n - base
		}
		// Each group is one logical lane batch (Options.Lanes). Behavioral
		// DUT models execute its lanes through the scalar path in ascending
		// lane order — the campaign-level scalar spill — and every lane's
		// corpus/RNG feedback folds in that same order, so the outcome
		// stream is identical at every lane width.
		for lane := 0; lane < group; lane++ {
			i := base + lane
			if h := w.opt.FaultHook; h != nil {
				h.BeforeIteration(w.id, round, i)
			}
			dst = append(dst, w.runOne())
		}
	}
	w.flushMutationMetrics()
	return dst
}

// runBatchGrouped executes n iterations against a GroupExecutor, whole lane
// groups at a time, through a fixed three-phase loop per group: prepare every
// lane's testcase (ascending lane order), execute the group bit-parallel,
// then finish every lane (ascending lane order again). The RNG draw order is
// [prepare lane 0..G-1][finish lane 0..G-1] per group — a pure function of
// GroupWidth — and Options.Lanes only selects the executor's internal chunk
// width, so the outcome stream is byte-identical at every Lanes setting
// (TestNetlistLaneMatrix pins this). Same-group corpus offers land in the
// finish phase, after every selection of the group already happened in the
// prepare phase, so a group never feeds back into itself — the same
// visibility a merge-barrier batch boundary gives the parallel engine.
func (w *worker) runBatchGrouped(g GroupExecutor, dst []outcome, n, round int) []outcome {
	width := g.GroupWidth()
	chunk := normalizeLanes(w.opt)
	for base := 0; base < n; base += width {
		group := width
		if base+group > n {
			group = n - base
		}
		w.pending = w.pending[:0]
		w.tcs = w.tcs[:0]
		for lane := 0; lane < group; lane++ {
			if h := w.opt.FaultHook; h != nil {
				h.BeforeIteration(w.id, round, base+lane)
			}
			p := w.prepare()
			w.pending = append(w.pending, p)
			w.tcs = append(w.tcs, p.tc)
		}
		w.pairs = g.ExecuteGroup(w.tcs, w.opt.SecretA, w.opt.SecretB, chunk, w.pairs[:0])
		for lane := 0; lane < group; lane++ {
			pr := w.pairs[lane]
			dst = append(dst, w.finish(w.pending[lane], pr.A, pr.B))
		}
	}
	return dst
}

// normalizeLanes resolves Options.Lanes to the effective lane-group width:
// at least 1 (scalar), at most hdl.Lanes (one testcase per bit of a plane
// word).
func normalizeLanes(opt Options) int {
	lanes := opt.Lanes
	if lanes < 1 {
		return 1
	}
	if lanes > hdl.Lanes {
		return hdl.Lanes
	}
	return lanes
}

// flushMutationMetrics publishes the batched retention-decision counters
// and resets them. Metrics only; safe from the worker goroutine.
func (w *worker) flushMutationMetrics() {
	if w.mutOffered == 0 {
		return
	}
	w.opt.Observer.MutationsOffered(w.mutOffered, w.mutAccepted)
	w.mutOffered, w.mutAccepted = 0, 0
}

// takeNewSeeds returns the seeds retained since the previous call and
// resets the delta.
func (w *worker) takeNewSeeds() []*Seed {
	s := w.newSeeds
	w.newSeeds = nil
	return s
}

// analyzeExecutions runs dual-differential detection on one double
// execution: the victim's commit logs first and, only when the testcase
// actually carried an attacker program, the attacker core's logs. Guarding
// on the testcase (not just Options.DualCore) keeps attacker-less testcases
// in a dual-core campaign from feeding empty commit logs into detection.
func analyzeExecutions(tc *Testcase, exA, exB *Execution) *detect.Finding {
	finding := detect.Analyze(exA.Log, exB.Log, exA.Snap, exB.Snap)
	if finding == nil && len(tc.Attacker) > 0 {
		finding = detect.Analyze(exA.AttackerLog, exB.AttackerLog, exA.Snap, exB.Snap)
	}
	return finding
}

// statsAccum folds per-iteration outcomes into campaign statistics in a
// canonical order, so serial and parallel campaigns build Stats through the
// same code path.
type statsAccum struct {
	// an is any worker executor's contention analysis: point IDs are
	// identical across a campaign's executor instances (the Executor
	// contract), so the accumulator never needs the executor itself.
	an  *trace.Analysis
	opt Options
	st  *Stats
	obs *obs.Observer
	// best is the campaign-wide best reqsIntvl per point, tracked only for
	// the observability gauges (the corpus keeps its own copy).
	best map[int]int64
}

func newStatsAccum(an *trace.Analysis, opt Options) *statsAccum {
	a := &statsAccum{an: an, opt: opt, st: &Stats{TriggeredPoints: make(map[int]bool)}, obs: opt.Observer}
	if a.obs != nil {
		a.best = make(map[int]int64)
	}
	return a
}

// apply folds one outcome; the global iteration index is the fold order.
func (a *statsAccum) apply(o outcome) {
	st := a.st
	it := len(st.PerIteration) + 1
	newPts := 0
	var early [2]int
	for _, id := range o.triggered {
		if !st.TriggeredPoints[id] {
			st.TriggeredPoints[id] = true
			newPts++
			if a.obs != nil {
				intvl := int64(-1) // same-path trigger only: no distinct pair
				if v, ok := o.intvls[id]; ok {
					intvl = v
				}
				a.obs.PointTriggered(it, id, intvl)
			}
			if it <= 20 {
				st.EarlyTriggered++
				if singleValidDominated(a.an, id) {
					st.SingleValidTriggered++
					early[0]++
				} else {
					early[1]++
				}
			}
		}
	}
	if it <= 20 {
		st.EarlyBreakdown = append(st.EarlyBreakdown, early)
	}

	cum := 0
	if len(st.PerIteration) > 0 {
		cum = st.PerIteration[len(st.PerIteration)-1].CumTimingDiffs
	}
	if o.finding != nil {
		cum++
		a.obs.TimingDiff()
		if a.opt.KeepFindings == 0 || len(st.Findings) < a.opt.KeepFindings {
			st.Findings = append(st.Findings, o.finding)
			st.FindingSeeds = append(st.FindingSeeds, o.tc)
			a.obs.FindingDetected(it, len(st.Findings))
		}
	}
	st.ExecutedCycles += o.cycles
	st.PerIteration = append(st.PerIteration, IterStats{
		Iteration:      it,
		NewPoints:      newPts,
		CumPoints:      len(st.TriggeredPoints),
		CumTimingDiffs: cum,
	})
	if a.obs != nil {
		for id, v := range o.intvls { //sonar:nondeterministic-ok metrics-only gauges; min-fold is order-insensitive
			if old, ok := a.best[id]; !ok || v < old {
				a.best[id] = v
				a.obs.SetBestInterval(id, v)
			}
		}
		a.obs.IterationDone(it, newPts, len(st.TriggeredPoints), cum, o.cycles)
	}
}

// applyAll folds one worker's round of outcomes in order — the batched
// ingestion path of the parallel coordinator's fold goroutine, one call per
// (worker, round) instead of an interleaved per-outcome fold.
func (a *statsAccum) applyAll(outs []outcome) {
	for i := range outs {
		a.apply(outs[i])
	}
}

// finish emits the campaign-closing event once the final Stats fields
// (CorpusSize) are in place.
func (a *statsAccum) finish() {
	if a.obs == nil {
		return
	}
	st := a.st
	var last IterStats
	if n := len(st.PerIteration); n > 0 {
		last = st.PerIteration[n-1]
	}
	a.obs.CampaignEnd(len(st.PerIteration), last.CumPoints, last.CumTimingDiffs,
		len(st.Findings), st.CorpusSize, st.ExecutedCycles)
}

// Run executes a fuzzing campaign on the DUT. Progress is reported through
// opt.Observer (when set) in execution order, one event group per
// iteration.
//
// Only the distinct-request interval (the volatile-contention approach
// metric, §6.2.1) feeds the corpus — see monitor.MergeMinIntervals;
// same-path progress is driven by the data-similarity mutation instead
// (§6.2.2), which proved more effective than steering selection by
// same-path intervals.
func Run(d *DUT, opt Options) *Stats {
	w := newWorker(d, opt, rand.New(rand.NewSource(opt.Seed)))
	acc := newStatsAccum(d.Analysis, opt)
	// campaign_start reports the same effective (post-clamp) worker count
	// and batch size RunParallel(Workers=1) would, so the two engines'
	// event streams agree on the campaign header (the "Workers<=1
	// reproduces serial" contract extends to the stream; see
	// TestSerialEventStreamMatchesWorkers1).
	workers, batch := normalizeParallel(opt)
	if workers != 1 {
		workers = 1 // Run is the single-shard engine regardless of opt.Workers
	}
	opt.Observer.CampaignStart(d.Analysis.Netlist.Name(), opt.Iterations, workers, batch, opt.Seed)
	// The serial engine groups iterations into the same lane batches as
	// runBatch; on behavioral DUTs every lane takes the scalar path, so the
	// grouping is pure bookkeeping and the fold order never changes.
	lanes := normalizeLanes(opt)
	for base := 0; base < opt.Iterations; base += lanes {
		group := lanes
		if base+group > opt.Iterations {
			group = opt.Iterations - base
		}
		for lane := 0; lane < group; lane++ {
			acc.apply(w.runOne())
			w.flushMutationMetrics()
		}
	}
	acc.st.CorpusSize = w.corpus.Len()
	acc.finish()
	return acc.st
}

// singleValidDominated reports whether a point's triggering is dominated by
// a single valid signal (paper Figure 9): either at most one request
// carries validity, or some request has no validity indication at all — a
// constantly-valid peer, so any single valid assertion triggers the point
// (§8.3.2 observation ①).
func singleValidDominated(an *trace.Analysis, pointID int) bool {
	p := an.Points[pointID]
	withValid := 0
	constPeer := false
	for i := range p.Requests {
		if p.Requests[i].HasValid() {
			withValid++
		} else if !p.Requests[i].Data.IsConst() {
			constPeer = true
		}
	}
	return withValid <= 1 || constPeer
}
