package fuzz

import (
	"math/rand"

	"sonar/internal/detect"
	"sonar/internal/monitor"
)

// Options configures a fuzzing campaign. The three strategy switches map to
// the paper's breakdown experiment (Figure 10): retention ⊂ selection ⊂
// directed mutation; with all three off the campaign degenerates to the
// random-testing baseline of Figure 8.
type Options struct {
	// Iterations is the number of testcases to execute.
	Iterations int
	// Seed seeds the campaign's RNG; equal seeds give equal campaigns.
	Seed int64
	// Retention keeps interval-reducing testcases in the corpus (§6.2.1 ①).
	Retention bool
	// Selection prioritizes seeds closest to triggering (§6.2.1 ②);
	// implies Retention.
	Selection bool
	// DirectedMutation applies the adaptive interval-guided chain mutation
	// (§6.2.1 ③); implies Selection.
	DirectedMutation bool
	// DualCore also generates attacker programs for the second core
	// (template Figure 4b). Requires a two-core DUT.
	DualCore bool
	// SecretA and SecretB are the two secret values each testcase runs
	// under.
	SecretA, SecretB uint64
	// KeepFindings caps the retained finding list (0 = keep all).
	KeepFindings int
	// RandomDirection disables the adaptive direction memory of the
	// directed mutation: each retained seed gets a random direction
	// instead of inheriting/flipping based on the previous mutation's
	// effect — the ablation of §6.2.1's "adaptive directed mutation".
	RandomDirection bool
}

// SonarOptions returns the full Sonar strategy set.
func SonarOptions(iterations int) Options {
	return Options{
		Iterations: iterations, Seed: 1,
		Retention: true, Selection: true, DirectedMutation: true,
		SecretA: 0, SecretB: 1,
	}
}

// RandomOptions returns the unguided random-testing baseline ("Sonar
// without any guidance", Figure 8).
func RandomOptions(iterations int) Options {
	return Options{Iterations: iterations, Seed: 1, SecretA: 0, SecretB: 1}
}

// IterStats is the cumulative progress after one iteration, the series
// plotted in Figures 8, 10 and 11.
type IterStats struct {
	// Iteration is 1-based.
	Iteration int
	// NewPoints is the number of contention points newly triggered by this
	// testcase.
	NewPoints int
	// CumPoints is the cumulative number of distinct triggered points.
	CumPoints int
	// CumTimingDiffs is the cumulative number of testcases exposing a
	// secret-dependent timing difference.
	CumTimingDiffs int
}

// Stats is the result of a campaign.
type Stats struct {
	PerIteration []IterStats
	// Findings are the detected side channels (dual-differential verified).
	Findings []*detect.Finding
	// FindingSeeds are the testcases that exposed each retained finding
	// (parallel to Findings); export them with Testcase.Marshal.
	FindingSeeds []*Testcase
	// TriggeredPoints is the final set of triggered contention point IDs.
	TriggeredPoints map[int]bool
	// SingleValidTriggered counts points triggered within the first 20
	// testcases whose requests are dominated by a single valid signal
	// (paper Figure 9); EarlyTriggered is the total in that window.
	SingleValidTriggered int
	EarlyTriggered       int
	// EarlyBreakdown records, for each of the first 20 testcases, how many
	// newly triggered points were single-valid dominated vs not (the bars
	// of paper Figure 9).
	EarlyBreakdown [][2]int
	// CorpusSize is the final seed corpus size.
	CorpusSize int
	// ExecutedCycles is the total simulated cycle count.
	ExecutedCycles int64
}

// Run executes a fuzzing campaign on the DUT.
func Run(d *DUT, opt Options) *Stats {
	rng := rand.New(rand.NewSource(opt.Seed))
	corpus := NewCorpus()
	st := &Stats{TriggeredPoints: make(map[int]bool)}
	retention := opt.Retention || opt.Selection || opt.DirectedMutation
	selection := opt.Selection || opt.DirectedMutation

	for it := 1; it <= opt.Iterations; it++ {
		var tc *Testcase
		var parent *Seed
		target := -1
		if retention && corpus.Len() > 0 && rng.Float64() < 0.7 {
			parent, target = corpus.Select(rng, selection)
			if opt.DirectedMutation {
				tc = MutateDirected(parent, rng)
			} else {
				tc = MutateRandom(parent, rng)
			}
		} else {
			tc = Generate(rng, opt.DualCore)
		}

		exA := d.Execute(tc, opt.SecretA)
		exB := d.Execute(tc, opt.SecretB)
		st.ExecutedCycles += exA.Cycles + exB.Cycles

		// Contention coverage: union of points triggered in either run.
		newPts := 0
		var early [2]int
		for _, ex := range []*Execution{exA, exB} {
			for _, id := range ex.Snap.Triggered() {
				if !st.TriggeredPoints[id] {
					st.TriggeredPoints[id] = true
					newPts++
					if it <= 20 {
						st.EarlyTriggered++
						if singleValidDominated(d, id) {
							st.SingleValidTriggered++
							early[0]++
						} else {
							early[1]++
						}
					}
				}
			}
		}
		if it <= 20 {
			st.EarlyBreakdown = append(st.EarlyBreakdown, early)
		}

		// Dual-differential side-channel detection.
		finding := detect.Analyze(exA.Log, exB.Log, exA.Snap, exB.Snap)
		if finding == nil && opt.DualCore {
			finding = detect.Analyze(exA.AttackerLog, exB.AttackerLog, exA.Snap, exB.Snap)
		}
		cum := 0
		if len(st.PerIteration) > 0 {
			cum = st.PerIteration[len(st.PerIteration)-1].CumTimingDiffs
		}
		if finding != nil {
			cum++
			if opt.KeepFindings == 0 || len(st.Findings) < opt.KeepFindings {
				st.Findings = append(st.Findings, finding)
				st.FindingSeeds = append(st.FindingSeeds, tc)
			}
		}
		st.PerIteration = append(st.PerIteration, IterStats{
			Iteration:      it,
			NewPoints:      newPts,
			CumPoints:      len(st.TriggeredPoints),
			CumTimingDiffs: cum,
		})

		// Feedback: retention + adaptive direction update.
		if retention {
			intvls := mergeIntervals(exA.Snap, exB.Snap)
			dir := +1
			switch {
			case opt.RandomDirection:
				dir = 1 - 2*rng.Intn(2) // ablation: no direction memory
			case parent != nil:
				dir = parent.Dir
				if target >= 0 {
					oldV, okOld := parent.Intvls[target]
					newV, okNew := intvls[target]
					switch {
					case okNew && okOld && newV < oldV:
						// Improvement: keep direction.
					case okNew && !okOld:
						// First observation counts as progress.
					default:
						dir = -dir // no improvement: flip (adaptive, §6.2.1)
					}
				}
			}
			corpus.Offer(tc, intvls, dir, target)
		}
	}
	st.CorpusSize = corpus.Len()
	return st
}

// mergeIntervals takes the per-point minimum across the two secret runs.
// Only the distinct-request interval (the volatile-contention approach
// metric, §6.2.1) feeds the corpus; same-path progress is driven by the
// data-similarity mutation instead (§6.2.2), which proved more effective
// than steering selection by same-path intervals.
func mergeIntervals(a, b *monitor.Snapshot) map[int]int64 {
	m := a.MinIntervals()
	for id, v := range b.MinIntervals() {
		if old, ok := m[id]; !ok || v < old {
			m[id] = v
		}
	}
	return m
}

// singleValidDominated reports whether a point's triggering is dominated by
// a single valid signal (paper Figure 9): either at most one request
// carries validity, or some request has no validity indication at all — a
// constantly-valid peer, so any single valid assertion triggers the point
// (§8.3.2 observation ①).
func singleValidDominated(d *DUT, pointID int) bool {
	p := d.Analysis.Points[pointID]
	withValid := 0
	constPeer := false
	for i := range p.Requests {
		if p.Requests[i].HasValid() {
			withValid++
		} else if !p.Requests[i].Data.IsConst() {
			constPeer = true
		}
	}
	return withValid <= 1 || constPeer
}
