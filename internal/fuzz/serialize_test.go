package fuzz

import (
	"math/rand"
	"strings"
	"testing"
)

func TestTestcaseMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		tc := Generate(rng, i%2 == 0)
		text := tc.Marshal()
		back, err := Unmarshal(text)
		if err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, text)
		}
		if back.Probe != tc.Probe || back.ProbeOffset != tc.ProbeOffset || back.ProbeDelay != tc.ProbeDelay {
			t.Fatalf("case %d: template metadata drifted", i)
		}
		if len(back.Patterns) != len(tc.Patterns) {
			t.Fatalf("case %d: patterns %d != %d", i, len(back.Patterns), len(tc.Patterns))
		}
		pa, _, _ := tc.Build()
		pb, _, _ := back.Build()
		if pa.Len() != pb.Len() {
			t.Fatalf("case %d: rebuilt program length %d != %d", i, pb.Len(), pa.Len())
		}
		for j := range pa.Code {
			if pa.Code[j] != pb.Code[j] {
				t.Fatalf("case %d instr %d: %s != %s", i, j, pb.Code[j], pa.Code[j])
			}
		}
	}
}

func TestTestcaseMarshalIsEditable(t *testing.T) {
	src := `
# sonar testcase
# probe: 1
# probe-offset: 4096
# probe-delay: 12
# patterns: 0 1
.chain
  addi x9, x9, 1
  addi x9, x9, 1
.prologue
  ld x3, 64(x28)
.epilogue
  mul x4, x3, x3
`
	tc, err := Unmarshal(src)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Probe != PatternDiv || tc.ProbeOffset != 4096 || tc.ProbeDelay != 12 {
		t.Errorf("metadata = %+v", tc)
	}
	if len(tc.HeadChain) != 2 || len(tc.Prologue) != 1 || len(tc.Epilogue) != 1 {
		t.Errorf("regions = %d/%d/%d", len(tc.HeadChain), len(tc.Prologue), len(tc.Epilogue))
	}
	if len(tc.Patterns) != 2 || tc.Patterns[0] != PatternLoad || tc.Patterns[1] != PatternDiv {
		t.Errorf("patterns = %v", tc.Patterns)
	}
	// The parsed testcase must build into a runnable program.
	prog, s, e := tc.Build()
	if prog.Len() == 0 || s <= 0 || e <= s {
		t.Error("rebuilt program malformed")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"bad section", ".bogus\n"},
		{"instr outside section", "addi x1, x0, 1\n"},
		{"bad instr", ".chain\n frobnicate x1\n"},
		{"bad probe", "# probe: 99\n"},
		{"bad pattern", "# patterns: banana\n"},
		{"bad offset", "# probe-offset: xyz\n"},
	}
	for _, c := range cases {
		if _, err := Unmarshal(c.src); err == nil {
			t.Errorf("%s: Unmarshal succeeded", c.name)
		}
	}
	// Plain comments and unknown keys are tolerated.
	if _, err := Unmarshal("# hello world\n# future-key: 7\n.chain\n"); err != nil {
		t.Errorf("benign input rejected: %v", err)
	}
}

func TestMarshalMentionsSections(t *testing.T) {
	tc := Generate(rand.New(rand.NewSource(1)), true)
	text := tc.Marshal()
	for _, want := range []string{".chain", ".prologue", ".epilogue", ".attacker", "# patterns:"} {
		if !strings.Contains(text, want) {
			t.Errorf("Marshal missing %q", want)
		}
	}
}
