package fuzz

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The counted RNG source must be a transparent wrapper: same draw sequence
// as the plain source it wraps (so attaching the counter never perturbs a
// campaign), and a fresh source fast-forwarded to a recorded cursor must
// continue the sequence exactly (the checkpoint/resume mechanism). This
// also pins the rand.Source64 assertion inside newCountedSource.
func TestCountedSourceMatchesPlainSource(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		plain := rand.New(rand.NewSource(seed))
		src := newCountedSource(seed, 0)
		counted := rand.New(src)
		for i := 0; i < 500; i++ {
			// Mix the draw kinds a campaign uses.
			switch i % 3 {
			case 0:
				if a, b := plain.Int63(), counted.Int63(); a != b {
					t.Fatalf("seed %d draw %d: Int63 %d vs %d", seed, i, a, b)
				}
			case 1:
				if a, b := plain.Float64(), counted.Float64(); a != b {
					t.Fatalf("seed %d draw %d: Float64 %v vs %v", seed, i, a, b)
				}
			default:
				if a, b := plain.Intn(97), counted.Intn(97); a != b {
					t.Fatalf("seed %d draw %d: Intn %d vs %d", seed, i, a, b)
				}
			}
		}
		replay := rand.New(newCountedSource(seed, src.cursor()))
		for i := 0; i < 200; i++ {
			if a, b := counted.Int63(), replay.Int63(); a != b {
				t.Fatalf("seed %d: replayed cursor diverged at draw %d: %d vs %d", seed, i, a, b)
			}
		}
	}
}

// pausedCampaign runs a parallel campaign that pauses after maxRounds merge
// rounds with a checkpoint at the returned path.
func pausedCampaign(t *testing.T, opt Options, maxRounds int) (string, *Checkpoint) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	opt.Checkpoint = path
	opt.MaxRounds = maxRounds
	RunParallel(liteFactory, opt)
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	return path, cp
}

// The round-trip property: a checkpoint serialized, reloaded, and resumed
// produces Stats identical to the uninterrupted campaign — including the
// exported finding seeds, which cross the checkpoint in Marshal form.
func TestCheckpointRoundTripMatchesUninterrupted(t *testing.T) {
	base := SonarOptions(40)
	base.Workers = 2
	base.BatchSize = 5
	full := RunParallel(liteFactory, base)

	_, cp := pausedCampaign(t, base, 2)
	if cp.Complete {
		t.Fatal("pause checkpoint marked complete")
	}
	if cp.Done == 0 || cp.Done >= base.Iterations {
		t.Fatalf("pause checkpoint at %d/%d iterations", cp.Done, base.Iterations)
	}
	resumed, err := Resume(liteFactory, cp.CampaignOptions(), cp)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	statsEqual(t, full, resumed)
	if len(full.FindingSeeds) != len(resumed.FindingSeeds) {
		t.Fatalf("finding seeds: %d vs %d", len(full.FindingSeeds), len(resumed.FindingSeeds))
	}
	for i := range full.FindingSeeds {
		if full.FindingSeeds[i].Marshal() != resumed.FindingSeeds[i].Marshal() {
			t.Errorf("finding seed %d differs after resume", i)
		}
	}
}

// Checkpoint files must be byte-deterministic: two identical paused
// campaigns write identical files (map-ordered state is serialized in
// sorted form).
func TestCheckpointBytesDeterministic(t *testing.T) {
	opt := SonarOptions(30)
	opt.Workers = 2
	opt.BatchSize = 4
	pathA, _ := pausedCampaign(t, opt, 2)
	pathB, _ := pausedCampaign(t, opt, 2)
	a, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Error("identical paused campaigns wrote different checkpoint files")
	}
}

// The headline durability contract: a campaign killed mid-run (paused at a
// merge barrier) and resumed produces a final Stats and an event stream
// byte-identical to the uninterrupted run — the resumed stream continues
// the original sequence numbering and the concatenation of the two streams
// equals the uninterrupted stream.
func TestResumeEventStreamByteContinuity(t *testing.T) {
	base := SonarOptions(40)
	base.Workers = 2
	base.BatchSize = 5

	uopt, umem := observedOptions(base)
	full := RunParallel(liteFactory, uopt)

	popt, pmem := observedOptions(base)
	_, cp := pausedCampaign(t, popt, 2)

	ropt, rmem := observedOptions(cp.CampaignOptions())
	resumed, err := Resume(liteFactory, ropt, cp)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	statsEqual(t, full, resumed)

	concat := append(pmem.Bytes(), rmem.Bytes()...)
	if len(concat) == 0 {
		t.Fatal("no events emitted")
	}
	if !bytes.Equal(concat, umem.Bytes()) {
		t.Error("paused+resumed event stream differs from the uninterrupted stream")
	}
}

// Truncated, bit-flipped, or otherwise mangled checkpoint files must be
// rejected at load time, never half-restored.
func TestCheckpointCorruptionRejected(t *testing.T) {
	opt := SonarOptions(30)
	opt.Workers = 2
	opt.BatchSize = 4
	path, _ := pausedCampaign(t, opt, 2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"truncated":     data[:len(data)-9],
		"empty":         nil,
		"header only":   data[:bytes.IndexByte(data, '\n')+1],
		"not a header":  []byte("hello world\n{}"),
		"bad version":   bytes.Replace(data, []byte(checkpointMagic+" v1 "), []byte(checkpointMagic+" v9 "), 1),
		"flipped byte":  flipByte(data, len(data)-20),
		"flipped early": flipByte(data, bytes.IndexByte(data, '\n')+10),
	}
	dir := t.TempDir()
	for name, mangled := range cases {
		p := filepath.Join(dir, strings.ReplaceAll(name, " ", "-"))
		if err := os.WriteFile(p, mangled, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(p); err == nil {
			t.Errorf("%s checkpoint loaded without error", name)
		}
	}
	// The untouched original must still load.
	if _, err := LoadCheckpoint(path); err != nil {
		t.Errorf("valid checkpoint rejected: %v", err)
	}
}

func flipByte(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0x01
	return out
}

// Resume must refuse a checkpoint whose campaign shape differs from the
// offered Options: continuing under a different seed, strategy, or worker
// count would silently break the bit-identity contract.
func TestResumeShapeMismatchRejected(t *testing.T) {
	opt := SonarOptions(30)
	opt.Workers = 2
	opt.BatchSize = 4
	_, cp := pausedCampaign(t, opt, 1)

	mutations := map[string]func(*Options){
		"seed":       func(o *Options) { o.Seed++ },
		"workers":    func(o *Options) { o.Workers++ },
		"batch size": func(o *Options) { o.BatchSize++ },
		"iterations": func(o *Options) { o.Iterations++ },
		"strategy":   func(o *Options) { o.DirectedMutation = false },
		"secrets":    func(o *Options) { o.SecretB = 7 },
	}
	for name, mutate := range mutations {
		ropt := cp.CampaignOptions()
		mutate(&ropt)
		if _, err := Resume(liteFactory, ropt, cp); err == nil {
			t.Errorf("resume with mismatched %s succeeded", name)
		}
	}
	// Operational fields are not part of the shape.
	ropt := cp.CampaignOptions()
	ropt.CheckpointEvery = 7
	ropt.MaxRounds = 1
	if _, err := Resume(liteFactory, ropt, cp); err != nil {
		t.Errorf("resume with changed operational fields failed: %v", err)
	}
}

// A campaign run to completion leaves a Complete checkpoint; resuming it
// returns the final Stats without executing anything.
func TestResumeCompleteCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	opt := SonarOptions(30)
	opt.Workers = 2
	opt.BatchSize = 4
	opt.Checkpoint = path
	full := RunParallel(liteFactory, opt)

	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Complete {
		t.Fatal("finished campaign's checkpoint not marked complete")
	}
	if cp.Done != opt.Iterations {
		t.Fatalf("complete checkpoint at %d/%d iterations", cp.Done, opt.Iterations)
	}
	st, err := Resume(liteFactory, cp.CampaignOptions(), cp)
	if err != nil {
		t.Fatalf("resume complete checkpoint: %v", err)
	}
	statsEqual(t, full, st)
}

// A checkpoint cut at a mid-pipeline round boundary — while the fold
// goroutine may still be draining the round just merged — must capture the
// exact barrier state: the coordinator drains the pipeline before
// snapshotting, so the resumed campaign's Stats and event stream
// byte-continue the uninterrupted run. Workers=8 with a tiny batch keeps
// the double-buffered pipeline primed at every periodic checkpoint.
func TestCheckpointMidPipelineRoundBoundary(t *testing.T) {
	base := SonarOptions(96)
	base.Workers = 8
	base.BatchSize = 3

	uopt, umem := observedOptions(base)
	full := RunParallel(liteFactory, uopt)

	popt, pmem := observedOptions(base)
	popt.CheckpointEvery = 24 // one checkpoint per round, right behind the fold
	_, cp := pausedCampaign(t, popt, 2)
	if cp.Complete {
		t.Fatal("pause checkpoint marked complete")
	}
	if cp.Done == 0 || cp.Done >= base.Iterations {
		t.Fatalf("pause checkpoint at %d/%d iterations", cp.Done, base.Iterations)
	}

	ropt, rmem := observedOptions(cp.CampaignOptions())
	resumed, err := Resume(liteFactory, ropt, cp)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	statsEqual(t, full, resumed)
	concat := append(pmem.Bytes(), rmem.Bytes()...)
	if !bytes.Equal(concat, umem.Bytes()) {
		t.Error("mid-pipeline paused+resumed stream differs from the uninterrupted stream")
	}
}

// Periodic checkpoints: with CheckpointEvery below the campaign length, a
// mid-run pause must find a checkpoint no older than one merge round, and
// resuming from the periodic (not forced) snapshot still reproduces the
// uninterrupted run.
func TestPeriodicCheckpointResumable(t *testing.T) {
	base := SonarOptions(40)
	base.Workers = 2
	base.BatchSize = 4
	full := RunParallel(liteFactory, base)

	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	opt := base
	opt.Checkpoint = path
	opt.CheckpointEvery = 8
	opt.MaxRounds = 3 // pause right after a periodic write (8 per round)
	RunParallel(liteFactory, opt)
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Done == 0 || cp.Done%8 != 0 {
		t.Fatalf("periodic checkpoint at %d iterations, want a multiple of 8", cp.Done)
	}
	resumed, err := Resume(liteFactory, cp.CampaignOptions(), cp)
	if err != nil {
		t.Fatal(err)
	}
	statsEqual(t, full, resumed)
}
