// Package faultinject is a deterministic fault-injection harness for the
// parallel fuzzing engine: a Schedule makes specific workers panic or stall
// at specific (round, iteration) positions, exercising the engine's
// recovery paths — panic recovery, batch retry on a replacement worker, and
// per-iteration deadlines — under `go test -race`.
//
// A Schedule plugs into a campaign through fuzz.Options.FaultHook; it
// satisfies the fuzz.FaultHook interface structurally, so this package does
// not import (and cannot perturb) the engine it tests. Each fault fires
// exactly once by default: the retried batch passes over the same position
// without re-faulting, which is also how a real transient fault behaves.
// Repeat faults model permanently broken shards.
package faultinject

import (
	"fmt"
	"sync"
)

// Mode selects what a fault does to the worker goroutine.
type Mode int

const (
	// ModePanic makes the worker panic with a deterministic message.
	ModePanic Mode = iota
	// ModeStall blocks the worker until the Schedule's Release is called —
	// the wedged-simulation case a per-iteration deadline aborts.
	ModeStall
)

// String returns the mode's schedule-table name.
func (m Mode) String() string {
	switch m {
	case ModePanic:
		return "panic"
	case ModeStall:
		return "stall"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Fault schedules one injected fault at an exact campaign position.
type Fault struct {
	// Worker is the shard index the fault targets.
	Worker int
	// Round is the 1-based merge round the fault fires in.
	Round int
	// Iter is the 0-based iteration within the batch the fault fires
	// before.
	Iter int
	// Mode is what the fault does (panic or stall).
	Mode Mode
	// Repeat re-arms the fault after it fires, so every retry of the batch
	// faults again — the permanently-broken-shard case that drives the
	// engine's abandonment path. Default (false) is a transient fault:
	// fire once, let the retry succeed.
	Repeat bool
}

type position struct{ worker, round, iter int }

// Schedule is a set of scheduled faults; it implements fuzz.FaultHook.
// BeforeIteration is called concurrently from worker goroutines; the
// schedule serializes its own bookkeeping.
type Schedule struct {
	mu      sync.Mutex
	faults  map[position]Fault
	fired   int
	release chan struct{}
}

// NewSchedule builds a schedule from the given faults. Duplicate positions
// keep the last fault.
func NewSchedule(faults ...Fault) *Schedule {
	s := &Schedule{
		faults:  make(map[position]Fault, len(faults)),
		release: make(chan struct{}),
	}
	for _, f := range faults {
		s.faults[position{f.Worker, f.Round, f.Iter}] = f
	}
	return s
}

// BeforeIteration implements the engine's fault seam: it panics or stalls
// when a fault is scheduled at (worker, round, iter), and is a cheap no-op
// otherwise.
func (s *Schedule) BeforeIteration(worker, round, iter int) {
	s.mu.Lock()
	pos := position{worker, round, iter}
	f, ok := s.faults[pos]
	if ok {
		if !f.Repeat {
			delete(s.faults, pos)
		}
		s.fired++
	}
	release := s.release
	s.mu.Unlock()
	if !ok {
		return
	}
	switch f.Mode {
	case ModeStall:
		<-release
	default:
		panic(fmt.Sprintf("faultinject: scheduled panic (worker=%d round=%d iter=%d)", worker, round, iter))
	}
}

// Release unblocks every stalled (and future ModeStall) fault, so tests can
// drain leaked worker goroutines before finishing. Safe to call more than
// once.
func (s *Schedule) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.release:
	default:
		close(s.release)
	}
}

// Fired returns how many faults have fired so far.
func (s *Schedule) Fired() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}
