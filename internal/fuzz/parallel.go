package fuzz

import (
	"fmt"
	"sync"
	"time"
)

// defaultBatchSize is the per-worker iteration count between two corpus
// merges when Options.BatchSize is zero. Executions dominate the cost of an
// iteration, so a few dozen iterations amortize the merge barrier while
// keeping retention/selection feedback near-global.
const defaultBatchSize = 32

// Fault-tolerance defaults (see the Options fields of the same names).
const (
	defaultMaxRetries   = 2
	defaultRetryBackoff = 50 * time.Millisecond
	// maxBackoffShift caps the exponential retry backoff at base<<4 = 16x.
	maxBackoffShift = 4
)

// abandonAttempt is the Attempt value of the worker_failed event that
// reports a shard abandonment. Failed batch attempts are numbered 1..N; the
// abandonment is a disposition, not an attempt, and carries 0 so it can
// never collide with a real attempt number (see obs.WorkerFailed).
const abandonAttempt = 0

// pipelineDepth is the number of recycled round-scratch buffers — and
// therefore how many merge rounds may be in flight between the worker
// barrier and the fold goroutine. Two means classic double buffering:
// workers execute round k+1 while the folder drains round k.
const pipelineDepth = 2

// coordinator is the state of one parallel campaign run: the shard workers,
// the static iteration budget per shard, the global corpus, and the stats
// accumulator. RunParallel and Resume both construct one and drive run().
//
// Since the merge barrier was restructured for scaling (docs/PERFORMANCE.md),
// the coordinator is split in two along the determinism contract:
//
//   - the barrier phase (run/runRound, main goroutine) does only the work
//     the next round depends on: fault dispositions, shard bookkeeping, and
//     the corpus merge + view distribution, all in canonical worker order;
//   - the fold phase (fold, a dedicated goroutine) drains everything else —
//     the per-outcome stats fold and every event emission — from a bounded
//     queue of completed rounds, in round order, while the workers already
//     execute the next batch.
//
// The fold order is exactly the old serial merge order, so Stats,
// PerIteration, and the event stream stay byte-identical per (Seed,
// Workers, BatchSize); only the wall-clock schedule changed.
type coordinator struct {
	newExec func() Executor
	opt     Options
	dut     string // netlist name, for checkpoints and campaign_start
	workers int
	batch   int
	ws      []*worker // nil entry = abandoned shard
	rem     []int     // remaining iterations per shard
	left    int       // total remaining iterations
	round   int       // merge rounds completed (cumulative across resumes)
	acc     *statsAccum
	global  *Corpus
	// lastSaved and nextCkpt drive periodic checkpointing: a checkpoint is
	// cut at the first merge barrier at or past every nextCkpt iterations.
	lastSaved int
	nextCkpt  int

	// Fold pipeline (see the type comment). foldCh carries merged rounds to
	// the fold goroutine; foldDone returns their scratch for reuse.
	// inFlight counts rounds handed off but not yet reclaimed, free holds
	// reclaimed scratch, and scratches counts total allocations (capped at
	// pipelineDepth). folderExit closes when the fold goroutine drains out.
	foldCh     chan *roundScratch
	foldDone   chan *roundScratch
	folderExit chan struct{}
	inFlight   int
	free       []*roundScratch
	scratches  int
}

// roundScratch is one merge round's recycled buffers and its deferred fold
// work: per-shard outcomes and fault records (filled during the parallel
// phase), plus the barrier's summary of what the folder must report.
// Ownership alternates — the coordinator fills a scratch, hands it to the
// fold goroutine, and only reuses it after it comes back — so the folder
// reads each round's data race-free while the next round executes.
type roundScratch struct {
	round     int
	outs      [][]outcome // per shard; capacity recycled across rounds
	fails     [][]string  // failed-attempt reasons, per shard
	recovered []bool      // batch succeeded on a replacement worker
	abandoned []bool      // shard abandoned at this round's barrier
	dropped   []int       // iterations dropped by the abandonment
	merged    int         // iterations merged at the barrier
	corpusLen int         // merged corpus size at the barrier
	mergeLat  time.Duration
}

func newRoundScratch(workers int) *roundScratch {
	return &roundScratch{
		outs:      make([][]outcome, workers),
		fails:     make([][]string, workers),
		recovered: make([]bool, workers),
		abandoned: make([]bool, workers),
		dropped:   make([]int, workers),
	}
}

// reset readies a scratch for the given round, keeping slice capacity.
func (rs *roundScratch) reset(round int) {
	rs.round = round
	for i := range rs.outs {
		rs.outs[i] = rs.outs[i][:0]
		rs.fails[i] = rs.fails[i][:0]
		rs.recovered[i] = false
		rs.abandoned[i] = false
		rs.dropped[i] = 0
	}
	rs.merged, rs.corpusLen, rs.mergeLat = 0, 0, 0
}

// normalizeParallel returns the effective (post-clamp) worker count and
// batch size of a parallel campaign — the values CampaignStart reports and
// a checkpoint's shape stores.
func normalizeParallel(opt Options) (workers, batch int) {
	workers = opt.Workers
	if workers < 1 {
		workers = 1
	}
	if opt.Iterations > 0 && workers > opt.Iterations {
		workers = opt.Iterations
	}
	batch = opt.BatchSize
	if batch <= 0 {
		batch = defaultBatchSize
	}
	return workers, batch
}

// RunParallel executes a sharded fuzzing campaign: Options.Workers workers,
// each owning a private DUT built by newDUT, execute batches of testcases
// against private corpus views; after every batch round the coordinator
// merges retained seeds into the global corpus in canonical worker order and
// restarts every worker from the merged view, while a fold goroutine drains
// the round's statistics and events off the workers' critical path.
//
// Determinism contract: worker w draws from rand.NewSource(opt.Seed+w), the
// batch schedule is static, and merges happen in worker order, so a
// campaign is reproducible for a fixed (Seed, Workers, BatchSize) — and
// Workers <= 1 reproduces Run's serial campaign exactly. The contract
// extends to observability: opt.Observer's events are emitted only by the
// coordinator's fold goroutine, one round at a time in fold order, so the
// merged event stream (and Stats.PerIteration, which it mirrors) is
// byte-identical across runs; worker goroutines update atomic metrics only.
//
// Durability (docs/CAMPAIGNS.md): with Options.Checkpoint set, the
// coordinator writes an atomic campaign snapshot at merge barriers every
// CheckpointEvery iterations (draining the fold pipeline first, so the
// snapshot is exact); Resume restores one into a campaign whose remaining
// iterations — Stats and event stream included — are identical to the
// uninterrupted run. Worker panics and (with IterTimeout) wedged iterations
// are recovered by retrying the batch on a replacement worker; a shard that
// keeps failing is abandoned and the campaign completes on the remaining
// workers.
func RunParallel(newDUT func() *DUT, opt Options) *Stats {
	return RunParallelExec(func() Executor { return newDUT() }, opt)
}

// RunParallelExec is RunParallel over any Executor factory — the entry point
// netlist-backed campaigns (fuzz.LaneDUT) use. RunParallel is a thin wrapper
// for behavioral-DUT factories.
func RunParallelExec(newExec func() Executor, opt Options) *Stats {
	workers, batch := normalizeParallel(opt)

	// One private executor per worker; elaboration and analysis are
	// independent and deterministic, so build them concurrently.
	ws := make([]*worker, workers)
	var wg sync.WaitGroup
	for i := range ws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ws[i] = newShardWorker(i, newExec(), opt, 0)
		}(i)
	}
	wg.Wait()
	observeCompile(opt.Observer, ws[0].d)

	// Static shard sizes: worker w owns iterations w, w+workers, ... of the
	// budget, drained in fixed-size batches.
	rem := make([]int, workers)
	for i := range rem {
		rem[i] = opt.Iterations / workers
		if i < opt.Iterations%workers {
			rem[i]++
		}
	}

	an := ws[0].d.ContentionAnalysis()
	c := &coordinator{
		newExec: newExec, opt: opt, dut: an.Netlist.Name(),
		workers: workers, batch: batch,
		ws: ws, rem: rem, left: opt.Iterations,
		acc: newStatsAccum(an, opt), global: NewCorpus(),
		lastSaved: -1, nextCkpt: checkpointEvery(opt),
	}
	opt.Observer.CampaignStart(c.dut, opt.Iterations, workers, batch, opt.Seed)
	return c.run()
}

// Resume continues a checkpointed campaign. opt must describe the same
// campaign shape (Seed, Workers, BatchSize, iteration budget, strategy
// switches) as the checkpoint; operational fields (Checkpoint,
// CheckpointEvery, MaxRounds, IterTimeout, retry policy, Observer,
// FaultHook) are free to differ — the usual way to build opt is
// cp.CampaignOptions() plus operational overrides.
//
// The resumed campaign is bit-identical to the uninterrupted run: the final
// Stats match, and the event stream emitted after Resume byte-continues the
// stream the interrupted run emitted before the checkpoint (sequence
// numbers included; no campaign_start is re-emitted).
func Resume(newDUT func() *DUT, opt Options, cp *Checkpoint) (*Stats, error) {
	return ResumeExec(func() Executor { return newDUT() }, opt, cp)
}

// ResumeExec is Resume over any Executor factory; Resume is a thin wrapper
// for behavioral-DUT factories.
func ResumeExec(newExec func() Executor, opt Options, cp *Checkpoint) (*Stats, error) {
	if err := cp.validate(); err != nil {
		return nil, err
	}
	if got, want := shapeOf(opt), cp.Shape; got != want {
		return nil, fmt.Errorf("fuzz: resume shape mismatch: options %+v vs checkpoint %+v", got, want)
	}

	st, best, err := cp.stats()
	if err != nil {
		return nil, err
	}
	global, err := cp.corpus()
	if err != nil {
		return nil, err
	}

	workers, batch := normalizeParallel(opt)
	ws := make([]*worker, workers)
	var wg sync.WaitGroup
	for i := range ws {
		if cp.Rem[i] == 0 {
			continue // drained or abandoned shard: no executor needed
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ws[i] = newShardWorker(i, newExec(), opt, cp.Cursors[i])
		}(i)
	}
	wg.Wait()
	// Distribute copy-on-write views of the restored corpus on this
	// goroutine (view marks the corpus frozen, which must not race).
	for _, w := range ws {
		if w != nil {
			w.corpus = global.view()
		}
	}

	acc := newStatsAccum(nil, opt)
	acc.st = st
	for _, w := range ws {
		// Any live worker's analysis serves the accumulator: point IDs are
		// identical across a campaign's executor instances.
		if w != nil {
			acc.an = w.d.ContentionAnalysis()
			observeCompile(opt.Observer, w.d)
			break
		}
	}
	if acc.best != nil {
		for _, pi := range best {
			acc.best[pi.Point] = pi.Intvl
		}
	}

	var lastIter IterStats
	if n := len(st.PerIteration); n > 0 {
		lastIter = st.PerIteration[n-1]
	}
	opt.Observer.CampaignResumed(cp.EventSeq, len(st.PerIteration),
		lastIter.CumPoints, lastIter.CumTimingDiffs, len(st.Findings),
		global.Len(), st.ExecutedCycles)

	c := &coordinator{
		newExec: newExec, opt: opt, dut: cp.DUT, workers: workers, batch: batch,
		ws: ws, rem: append([]int(nil), cp.Rem...), left: sum(cp.Rem),
		round: cp.Round, acc: acc, global: global,
		lastSaved: cp.Done, nextCkpt: nextCheckpointAfter(cp.Done, opt),
	}
	if cp.Complete || c.left == 0 {
		// The checkpoint already marks completion (or nothing remains):
		// finalize without re-executing or re-emitting campaign_end if the
		// original run already emitted it.
		c.acc.st.CorpusSize = c.global.Len()
		if !cp.Complete {
			c.writeCheckpoint(true)
			c.acc.finish()
		}
		return c.acc.st, nil
	}
	return c.run(), nil
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// checkpointEvery resolves the effective checkpoint period.
func checkpointEvery(opt Options) int {
	if opt.CheckpointEvery > 0 {
		return opt.CheckpointEvery
	}
	return defaultCheckpointEvery
}

// nextCheckpointAfter returns the first periodic checkpoint threshold
// strictly past `done` iterations.
func nextCheckpointAfter(done int, opt Options) int {
	every := checkpointEvery(opt)
	return (done/every + 1) * every
}

// run drives the campaign to completion (or a MaxRounds pause) and returns
// the accumulated Stats. Workers only execute inside runRound, so between
// loop iterations the shards are quiescent; the fold goroutine may still be
// draining earlier rounds, and every path that reads the accumulator or the
// event-stream position (checkpoints, pause, completion) drains it first.
func (c *coordinator) run() *Stats {
	c.startFolder()
	roundsThisRun := 0
	for c.left > 0 {
		if c.opt.MaxRounds > 0 && roundsThisRun >= c.opt.MaxRounds {
			// Pause: persist the position and return the partial Stats
			// without campaign_end, so a later Resume byte-continues the
			// event stream.
			c.drainFolds()
			c.stopFolder()
			c.writeCheckpoint(false)
			c.acc.st.CorpusSize = c.global.Len()
			return c.acc.st
		}
		c.round++
		roundsThisRun++
		rs := c.acquireScratch()
		c.runRound(rs)
		c.foldCh <- rs
		c.inFlight++
		if c.opt.Iterations-c.left >= c.nextCkpt {
			c.drainFolds()
			c.writeCheckpoint(false)
			c.nextCkpt = nextCheckpointAfter(c.opt.Iterations-c.left, c.opt)
		}
	}
	c.drainFolds()
	c.stopFolder()
	c.acc.st.CorpusSize = c.global.Len()
	c.writeCheckpoint(true)
	c.acc.finish()
	return c.acc.st
}

// startFolder launches the fold goroutine that drains merged rounds.
func (c *coordinator) startFolder() {
	c.foldCh = make(chan *roundScratch, pipelineDepth)
	c.foldDone = make(chan *roundScratch, pipelineDepth)
	c.folderExit = make(chan struct{})
	go func() {
		defer close(c.folderExit)
		for rs := range c.foldCh {
			c.fold(rs)
			c.foldDone <- rs
		}
	}()
}

// stopFolder shuts the fold goroutine down after drainFolds emptied the
// pipeline, so the coordinator may touch the accumulator and Observer
// directly afterwards.
func (c *coordinator) stopFolder() {
	close(c.foldCh)
	<-c.folderExit
}

// acquireScratch returns a round scratch to fill: a reclaimed one if
// available, a fresh one while under the pipeline depth, and otherwise it
// blocks until the folder finishes the oldest in-flight round — the
// back-pressure that bounds how far workers may run ahead of the fold.
func (c *coordinator) acquireScratch() *roundScratch {
	if n := len(c.free); n > 0 {
		rs := c.free[n-1]
		c.free = c.free[:n-1]
		return rs
	}
	if c.scratches < pipelineDepth {
		c.scratches++
		return newRoundScratch(c.workers)
	}
	rs := <-c.foldDone
	c.inFlight--
	return rs
}

// drainFolds blocks until every in-flight round has been folded. Callers
// that read the accumulator, emit through the Observer, or snapshot the
// campaign (checkpoints, completion) must drain first.
func (c *coordinator) drainFolds() {
	for c.inFlight > 0 {
		c.free = append(c.free, <-c.foldDone)
		c.inFlight--
	}
}

// runRound executes one batch round's barrier work: the parallel phase
// (each live shard drains one batch under the fault supervisor into the
// round's scratch), then — workers quiescent — the fault dispositions and
// the corpus merge in canonical worker order. Everything the next round
// does not depend on (the stats fold, all event emission) is left in the
// scratch for the fold goroutine, so the serial section of a round is just
// the seed re-offers and scheduling bookkeeping.
func (c *coordinator) runRound(rs *roundScratch) {
	rs.reset(c.round)
	var wg sync.WaitGroup
	for i, w := range c.ws {
		if w == nil {
			continue
		}
		n := c.rem[i]
		if n > c.batch {
			n = c.batch
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			c.superviseShard(i, n, rs)
		}(i, n)
	}
	wg.Wait()

	mergeStart := time.Now() //sonar:nondeterministic-ok merge duration feeds a BatchMerged metric, not canonical output
	// Barrier merge, canonical worker order: decide fault dispositions,
	// account drained iterations, and re-offer retained seeds to the global
	// corpus (re-offering drops seeds another worker has already beaten).
	versionAtStart := c.global.version
	refresh := false
	for i, w := range c.ws {
		if w == nil {
			continue
		}
		if len(rs.fails[i]) > 0 && !rs.recovered[i] {
			// Abandon the shard: its budget is dropped and the campaign
			// degrades to the remaining workers. The folder reports it.
			rs.abandoned[i] = true
			rs.dropped[i] = c.rem[i]
			c.left -= c.rem[i]
			c.rem[i] = 0
			c.ws[i] = nil
			continue
		}
		c.rem[i] -= len(rs.outs[i])
		c.left -= len(rs.outs[i])
		rs.merged += len(rs.outs[i])
		if seeds := w.takeNewSeeds(); len(seeds) > 0 {
			refresh = true
			for _, s := range seeds {
				c.global.Offer(s.TC, s.Intvls, s.Dir, s.Target)
			}
		}
	}

	// Distribute: when the merge changed the corpus (or any worker diverged
	// by retaining locally), every worker restarts from a fresh
	// copy-on-write view of the merged global; unchanged rounds — the
	// steady state once retention has converged — distribute nothing at
	// all, since every worker's view already equals the global corpus.
	if refresh || c.global.version != versionAtStart {
		for _, w := range c.ws {
			if w == nil {
				continue
			}
			w.corpus = c.global.view()
		}
	}
	rs.corpusLen = c.global.Len()
	rs.mergeLat = time.Since(mergeStart) //sonar:nondeterministic-ok operator-facing duration metric only
}

// fold drains one merged round on the fold goroutine, in exactly the order
// the pre-pipeline coordinator used: fault events per shard (each failed
// attempt, then the recovery or abandonment disposition), the per-outcome
// stats fold in worker order, then the batch_merged event carrying the
// barrier's corpus summary. This is the only goroutine that touches the
// accumulator or emits events while a campaign runs, so the event stream
// stays deterministic — and it runs concurrently with the next round's
// execution, off the workers' critical path.
func (c *coordinator) fold(rs *roundScratch) {
	for i := range rs.fails {
		for a, reason := range rs.fails[i] {
			c.opt.Observer.WorkerFailed(i, rs.round, a+1, reason)
		}
		if len(rs.fails[i]) == 0 {
			continue
		}
		if rs.abandoned[i] {
			c.opt.Observer.WorkerFailed(i, rs.round, abandonAttempt,
				fmt.Sprintf("shard abandoned after %d failed attempts; %d iterations dropped", len(rs.fails[i]), rs.dropped[i]))
		} else {
			c.opt.Observer.BatchRetried(i, rs.round, len(rs.fails[i])+1)
		}
	}
	for i := range rs.outs {
		c.acc.applyAll(rs.outs[i])
	}
	c.opt.Observer.BatchMerged(rs.round, rs.merged, rs.corpusLen, rs.mergeLat)
}

// superviseShard drains one batch of n iterations on shard i, retrying on a
// replacement worker (with bounded exponential backoff) after a panic or
// deadline abort. A successful retry replays the shard's pre-batch RNG
// cursor against a fresh snapshot of the global corpus — the global corpus
// is immutable during the parallel phase, so the replayed batch produces
// outcomes identical to the fault-free run. After MaxRetries failed
// retries the shard is left failed; the coordinator abandons it.
//
// Only the first attempt writes into the recycled rs.outs[i] scratch; a
// failed attempt's goroutine may linger (a stalled batch runs to its own
// end or forever), so after any failure the scratch buffer is surrendered
// to that goroutine and retries append to fresh allocations.
func (c *coordinator) superviseShard(i, n int, rs *roundScratch) {
	maxRetries := c.opt.MaxRetries
	if maxRetries == 0 {
		maxRetries = defaultMaxRetries
	} else if maxRetries < 0 {
		maxRetries = 0
	}
	backoff := c.opt.RetryBackoff
	if backoff <= 0 {
		backoff = defaultRetryBackoff
	}
	cursor := uint64(0)
	if w := c.ws[i]; w != nil && w.src != nil {
		cursor = w.src.cursor()
	}
	dst := rs.outs[i]
	for attempt := 0; ; attempt++ {
		w := c.ws[i]
		if attempt > 0 {
			shift := attempt - 1
			if shift > maxBackoffShift {
				shift = maxBackoffShift
			}
			time.Sleep(backoff << uint(shift))
			w = nil   // build a replacement inside the attempt goroutine
			dst = nil // the failed attempt's goroutine owns the scratch now
		}
		res, err := c.attemptBatch(w, dst, i, n, cursor)
		if err == nil {
			rs.outs[i] = res.outs
			c.ws[i] = res.w
			rs.recovered[i] = attempt > 0
			return
		}
		rs.fails[i] = append(rs.fails[i], err.Error())
		if attempt >= maxRetries {
			rs.outs[i] = nil // surrendered to the lingering goroutine
			return
		}
	}
}

// attemptResult carries one successful batch attempt: its outcomes and the
// worker that produced them (the original, or a freshly built replacement).
type attemptResult struct {
	outs []outcome
	w    *worker
}

// attemptBatch runs one batch attempt in its own goroutine, recovering
// panics and enforcing the per-batch deadline (n × IterTimeout). w == nil
// means "build a replacement worker": a fresh DUT with the shard's RNG
// replayed to the pre-batch cursor and a fresh global-corpus snapshot —
// built inside the attempt goroutine so a panicking DUT constructor is
// recovered like any other worker fault. An abandoned (stalled) attempt's
// goroutine keeps only private state (including the dst buffer it was
// given) and sends into 1-buffered channels, so it can finish late, or
// never, without racing or leaking a send.
func (c *coordinator) attemptBatch(w *worker, dst []outcome, i, n int, cursor uint64) (attemptResult, error) {
	done := make(chan attemptResult, 1)
	failed := make(chan string, 1)
	start := time.Now() //sonar:nondeterministic-ok batch wall time feeds worker-busy metrics, not canonical output
	go func() {
		defer func() {
			if r := recover(); r != nil {
				failed <- fmt.Sprintf("worker panic: %v", r)
			}
		}()
		if w == nil {
			w = newShardWorker(i, c.newExec(), c.opt, cursor)
			// Deep-copy snapshot, not a view: view() mutates the global
			// corpus's freeze flag, which must not race with other shards'
			// replacement builds during the parallel phase. Content equals
			// the view the original worker held, so the replay is exact.
			w.corpus = c.global.Snapshot()
		}
		done <- attemptResult{outs: w.runBatch(dst, n, c.round), w: w}
	}()

	var deadline <-chan time.Time
	if c.opt.IterTimeout > 0 {
		t := time.NewTimer(time.Duration(n) * c.opt.IterTimeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case res := <-done:
		c.opt.Observer.WorkerBatch(i, n, time.Since(start)) //sonar:nondeterministic-ok operator-facing duration metric only
		return res, nil
	case msg := <-failed:
		return attemptResult{}, fmt.Errorf("%s", msg)
	case <-deadline:
		return attemptResult{}, fmt.Errorf("batch deadline exceeded (%d iterations × %v)", n, c.opt.IterTimeout)
	}
}

// writeCheckpoint persists the campaign position when Options.Checkpoint is
// set. complete marks the final checkpoint of a finished campaign. Callers
// must have drained the fold pipeline, so the snapshot sees the exact
// accumulator and event-stream position of the barrier. Failures to write
// are reported through the checkpoint metrics staying flat — the campaign
// itself never aborts on checkpoint I/O errors (the operator loses
// durability, not results).
func (c *coordinator) writeCheckpoint(complete bool) {
	if c.opt.Checkpoint == "" {
		return
	}
	done := c.opt.Iterations - c.left
	if !complete && done == c.lastSaved {
		return // already persisted at this position
	}
	start := time.Now() //sonar:nondeterministic-ok checkpoint save duration feeds a metric, not canonical output
	cp := c.snapshot(complete)
	size, err := cp.Save(c.opt.Checkpoint)
	if err != nil {
		return
	}
	c.lastSaved = done
	c.opt.Observer.CheckpointSaved(done, size, time.Since(start)) //sonar:nondeterministic-ok operator-facing duration metric only
}
