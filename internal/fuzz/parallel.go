package fuzz

import (
	"fmt"
	"sync"
	"time"
)

// defaultBatchSize is the per-worker iteration count between two corpus
// merges when Options.BatchSize is zero. Executions dominate the cost of an
// iteration, so a few dozen iterations amortize the merge barrier while
// keeping retention/selection feedback near-global.
const defaultBatchSize = 32

// Fault-tolerance defaults (see the Options fields of the same names).
const (
	defaultMaxRetries   = 2
	defaultRetryBackoff = 50 * time.Millisecond
	// maxBackoffShift caps the exponential retry backoff at base<<4 = 16x.
	maxBackoffShift = 4
)

// coordinator is the state of one parallel campaign run: the shard workers,
// the static iteration budget per shard, the global corpus, and the stats
// accumulator. RunParallel and Resume both construct one and drive run().
type coordinator struct {
	newDUT  func() *DUT
	opt     Options
	dut     string // netlist name, for checkpoints and campaign_start
	workers int
	batch   int
	ws      []*worker // nil entry = abandoned shard
	rem     []int     // remaining iterations per shard
	left    int       // total remaining iterations
	round   int       // merge rounds completed (cumulative across resumes)
	acc     *statsAccum
	global  *Corpus
	// lastSaved and nextCkpt drive periodic checkpointing: a checkpoint is
	// cut at the first merge barrier at or past every nextCkpt iterations.
	lastSaved int
	nextCkpt  int
}

// normalizeParallel returns the effective (post-clamp) worker count and
// batch size of a parallel campaign — the values CampaignStart reports and
// a checkpoint's shape stores.
func normalizeParallel(opt Options) (workers, batch int) {
	workers = opt.Workers
	if workers < 1 {
		workers = 1
	}
	if opt.Iterations > 0 && workers > opt.Iterations {
		workers = opt.Iterations
	}
	batch = opt.BatchSize
	if batch <= 0 {
		batch = defaultBatchSize
	}
	return workers, batch
}

// RunParallel executes a sharded fuzzing campaign: Options.Workers workers,
// each owning a private DUT built by newDUT, execute batches of testcases
// against private corpus views; after every batch round a coordinator
// merges triggered points, per-point best intervals, and retained seeds in
// canonical worker order, and every worker restarts from the merged view.
//
// Determinism contract: worker w draws from rand.NewSource(opt.Seed+w), the
// batch schedule is static, and merges happen in worker order, so a
// campaign is reproducible for a fixed (Seed, Workers, BatchSize) — and
// Workers <= 1 reproduces Run's serial campaign exactly. The contract
// extends to observability: opt.Observer's events are emitted only here on
// the coordinator, in fold order, so the merged event stream (and
// Stats.PerIteration, which it mirrors) is byte-identical across runs;
// worker goroutines update atomic metrics only.
//
// Durability (docs/CAMPAIGNS.md): with Options.Checkpoint set, the
// coordinator writes an atomic campaign snapshot at merge barriers every
// CheckpointEvery iterations; Resume restores one into a campaign whose
// remaining iterations — Stats and event stream included — are identical
// to the uninterrupted run. Worker panics and (with IterTimeout) wedged
// iterations are recovered by retrying the batch on a replacement worker;
// a shard that keeps failing is abandoned and the campaign completes on
// the remaining workers.
func RunParallel(newDUT func() *DUT, opt Options) *Stats {
	workers, batch := normalizeParallel(opt)

	// One private DUT per worker; elaboration and analysis are independent
	// and deterministic, so build them concurrently.
	ws := make([]*worker, workers)
	var wg sync.WaitGroup
	for i := range ws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ws[i] = newShardWorker(i, newDUT(), opt, 0)
		}(i)
	}
	wg.Wait()

	// Static shard sizes: worker w owns iterations w, w+workers, ... of the
	// budget, drained in fixed-size batches.
	rem := make([]int, workers)
	for i := range rem {
		rem[i] = opt.Iterations / workers
		if i < opt.Iterations%workers {
			rem[i]++
		}
	}

	c := &coordinator{
		newDUT: newDUT, opt: opt, dut: ws[0].d.Analysis.Netlist.Name(),
		workers: workers, batch: batch,
		ws: ws, rem: rem, left: opt.Iterations,
		acc: newStatsAccum(ws[0].d, opt), global: NewCorpus(),
		lastSaved: -1, nextCkpt: checkpointEvery(opt),
	}
	opt.Observer.CampaignStart(c.dut, opt.Iterations, workers, batch, opt.Seed)
	return c.run()
}

// Resume continues a checkpointed campaign. opt must describe the same
// campaign shape (Seed, Workers, BatchSize, iteration budget, strategy
// switches) as the checkpoint; operational fields (Checkpoint,
// CheckpointEvery, MaxRounds, IterTimeout, retry policy, Observer,
// FaultHook) are free to differ — the usual way to build opt is
// cp.CampaignOptions() plus operational overrides.
//
// The resumed campaign is bit-identical to the uninterrupted run: the final
// Stats match, and the event stream emitted after Resume byte-continues the
// stream the interrupted run emitted before the checkpoint (sequence
// numbers included; no campaign_start is re-emitted).
func Resume(newDUT func() *DUT, opt Options, cp *Checkpoint) (*Stats, error) {
	if err := cp.validate(); err != nil {
		return nil, err
	}
	if got, want := shapeOf(opt), cp.Shape; got != want {
		return nil, fmt.Errorf("fuzz: resume shape mismatch: options %+v vs checkpoint %+v", got, want)
	}

	st, best, err := cp.stats()
	if err != nil {
		return nil, err
	}
	global, err := cp.corpus()
	if err != nil {
		return nil, err
	}

	workers, batch := normalizeParallel(opt)
	ws := make([]*worker, workers)
	var wg sync.WaitGroup
	for i := range ws {
		if cp.Rem[i] == 0 {
			continue // drained or abandoned shard: no DUT needed
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ws[i] = newShardWorker(i, newDUT(), opt, cp.Cursors[i])
			ws[i].corpus = global.Snapshot()
		}(i)
	}
	wg.Wait()

	acc := newStatsAccum(nil, opt)
	acc.st = st
	for _, w := range ws {
		// Any live worker's DUT serves the accumulator: analysis (and point
		// IDs) are identical across DUT instances.
		if w != nil {
			acc.d = w.d
			break
		}
	}
	if acc.best != nil {
		for _, pi := range best {
			acc.best[pi.Point] = pi.Intvl
		}
	}

	var lastIter IterStats
	if n := len(st.PerIteration); n > 0 {
		lastIter = st.PerIteration[n-1]
	}
	opt.Observer.CampaignResumed(cp.EventSeq, len(st.PerIteration),
		lastIter.CumPoints, lastIter.CumTimingDiffs, len(st.Findings),
		global.Len(), st.ExecutedCycles)

	c := &coordinator{
		newDUT: newDUT, opt: opt, dut: cp.DUT, workers: workers, batch: batch,
		ws: ws, rem: append([]int(nil), cp.Rem...), left: sum(cp.Rem),
		round: cp.Round, acc: acc, global: global,
		lastSaved: cp.Done, nextCkpt: nextCheckpointAfter(cp.Done, opt),
	}
	if cp.Complete || c.left == 0 {
		// The checkpoint already marks completion (or nothing remains):
		// finalize without re-executing or re-emitting campaign_end if the
		// original run already emitted it.
		c.acc.st.CorpusSize = c.global.Len()
		if !cp.Complete {
			c.writeCheckpoint(true)
			c.acc.finish()
		}
		return c.acc.st, nil
	}
	return c.run(), nil
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// checkpointEvery resolves the effective checkpoint period.
func checkpointEvery(opt Options) int {
	if opt.CheckpointEvery > 0 {
		return opt.CheckpointEvery
	}
	return defaultCheckpointEvery
}

// nextCheckpointAfter returns the first periodic checkpoint threshold
// strictly past `done` iterations.
func nextCheckpointAfter(done int, opt Options) int {
	every := checkpointEvery(opt)
	return (done/every + 1) * every
}

// run drives the campaign to completion (or a MaxRounds pause) and returns
// the accumulated Stats.
func (c *coordinator) run() *Stats {
	roundsThisRun := 0
	for c.left > 0 {
		if c.opt.MaxRounds > 0 && roundsThisRun >= c.opt.MaxRounds {
			// Pause: persist the position and return the partial Stats
			// without campaign_end, so a later Resume byte-continues the
			// event stream.
			c.writeCheckpoint(false)
			c.acc.st.CorpusSize = c.global.Len()
			return c.acc.st
		}
		c.round++
		roundsThisRun++
		c.runRound()
		if c.opt.Iterations-c.left >= c.nextCkpt {
			c.writeCheckpoint(false)
			c.nextCkpt = nextCheckpointAfter(c.opt.Iterations-c.left, c.opt)
		}
	}
	c.acc.st.CorpusSize = c.global.Len()
	c.writeCheckpoint(true)
	c.acc.finish()
	return c.acc.st
}

// runRound executes one batch round: the parallel phase (each live shard
// drains one batch under the fault supervisor), the fault-event phase, and
// the merge phase — the latter two in canonical worker order, keeping the
// event stream deterministic.
func (c *coordinator) runRound() {
	outs := make([][]outcome, c.workers)
	fails := make([][]string, c.workers)
	recovered := make([]bool, c.workers)
	var wg sync.WaitGroup
	for i, w := range c.ws {
		if w == nil {
			continue
		}
		n := c.rem[i]
		if n > c.batch {
			n = c.batch
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			c.superviseShard(i, n, outs, fails, recovered)
		}(i, n)
	}
	wg.Wait()

	// Fault events first, in worker order: each failed attempt, then the
	// recovery (or abandonment) disposition. Deterministic for a fixed
	// fault schedule.
	for i := range c.ws {
		for a, reason := range fails[i] {
			c.opt.Observer.WorkerFailed(i, c.round, a+1, reason)
		}
		if len(fails[i]) == 0 {
			continue
		}
		if recovered[i] {
			c.opt.Observer.BatchRetried(i, c.round, len(fails[i])+1)
		} else {
			// Abandon the shard: its budget is dropped and the campaign
			// degrades to the remaining workers.
			c.opt.Observer.WorkerFailed(i, c.round, len(fails[i]),
				fmt.Sprintf("shard abandoned after %d failed attempts; %d iterations dropped", len(fails[i]), c.rem[i]))
			c.left -= c.rem[i]
			c.rem[i] = 0
			c.ws[i] = nil
		}
	}

	// Merge phase, canonical worker order: fold outcomes into the global
	// stats and re-offer retained seeds to the global corpus (re-offering
	// drops seeds another worker has already beaten).
	mergeStart := time.Now() //sonar:nondeterministic-ok merge duration feeds a BatchMerged metric, not canonical output
	merged := 0
	for i, w := range c.ws {
		if w == nil {
			continue
		}
		for _, o := range outs[i] {
			c.acc.apply(o)
		}
		c.rem[i] -= len(outs[i])
		c.left -= len(outs[i])
		merged += len(outs[i])
		for _, s := range w.takeNewSeeds() {
			c.global.Offer(s.TC, s.Intvls, s.Dir, s.Target)
		}
	}

	// Distribute: every worker restarts from the merged global view.
	for _, w := range c.ws {
		if w == nil {
			continue
		}
		w.corpus = c.global.Snapshot()
	}
	c.opt.Observer.BatchMerged(c.round, merged, c.global.Len(), time.Since(mergeStart)) //sonar:nondeterministic-ok operator-facing duration metric only
}

// superviseShard drains one batch of n iterations on shard i, retrying on a
// replacement worker (with bounded exponential backoff) after a panic or
// deadline abort. A successful retry replays the shard's pre-batch RNG
// cursor against a fresh snapshot of the global corpus — the global corpus
// is immutable during the parallel phase, so the replayed batch produces
// outcomes identical to the fault-free run. After MaxRetries failed
// retries the shard is left failed; the coordinator abandons it.
func (c *coordinator) superviseShard(i, n int, outs [][]outcome, fails [][]string, recovered []bool) {
	maxRetries := c.opt.MaxRetries
	if maxRetries == 0 {
		maxRetries = defaultMaxRetries
	} else if maxRetries < 0 {
		maxRetries = 0
	}
	backoff := c.opt.RetryBackoff
	if backoff <= 0 {
		backoff = defaultRetryBackoff
	}
	cursor := uint64(0)
	if w := c.ws[i]; w != nil && w.src != nil {
		cursor = w.src.cursor()
	}
	for attempt := 0; ; attempt++ {
		w := c.ws[i]
		if attempt > 0 {
			shift := attempt - 1
			if shift > maxBackoffShift {
				shift = maxBackoffShift
			}
			time.Sleep(backoff << uint(shift))
			w = nil // build a replacement inside the attempt goroutine
		}
		res, err := c.attemptBatch(w, i, n, cursor)
		if err == nil {
			outs[i] = res.outs
			c.ws[i] = res.w
			recovered[i] = attempt > 0
			return
		}
		fails[i] = append(fails[i], err.Error())
		if attempt >= maxRetries {
			return
		}
	}
}

// attemptResult carries one successful batch attempt: its outcomes and the
// worker that produced them (the original, or a freshly built replacement).
type attemptResult struct {
	outs []outcome
	w    *worker
}

// attemptBatch runs one batch attempt in its own goroutine, recovering
// panics and enforcing the per-batch deadline (n × IterTimeout). w == nil
// means "build a replacement worker": a fresh DUT with the shard's RNG
// replayed to the pre-batch cursor and a fresh global-corpus snapshot —
// built inside the attempt goroutine so a panicking DUT constructor is
// recovered like any other worker fault. An abandoned (stalled) attempt's
// goroutine keeps only private state and sends into 1-buffered channels,
// so it can finish late, or never, without racing or leaking a send.
func (c *coordinator) attemptBatch(w *worker, i, n int, cursor uint64) (attemptResult, error) {
	done := make(chan attemptResult, 1)
	failed := make(chan string, 1)
	start := time.Now() //sonar:nondeterministic-ok batch wall time feeds worker-busy metrics, not canonical output
	go func() {
		defer func() {
			if r := recover(); r != nil {
				failed <- fmt.Sprintf("worker panic: %v", r)
			}
		}()
		if w == nil {
			w = newShardWorker(i, c.newDUT(), c.opt, cursor)
			w.corpus = c.global.Snapshot()
		}
		done <- attemptResult{outs: w.runBatch(n, c.round), w: w}
	}()

	var deadline <-chan time.Time
	if c.opt.IterTimeout > 0 {
		t := time.NewTimer(time.Duration(n) * c.opt.IterTimeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case res := <-done:
		c.opt.Observer.WorkerBatch(i, n, time.Since(start)) //sonar:nondeterministic-ok operator-facing duration metric only
		return res, nil
	case msg := <-failed:
		return attemptResult{}, fmt.Errorf("%s", msg)
	case <-deadline:
		return attemptResult{}, fmt.Errorf("batch deadline exceeded (%d iterations × %v)", n, c.opt.IterTimeout)
	}
}

// writeCheckpoint persists the campaign position when Options.Checkpoint is
// set. complete marks the final checkpoint of a finished campaign. Failures
// to write are reported through the checkpoint metrics staying flat — the
// campaign itself never aborts on checkpoint I/O errors (the operator loses
// durability, not results).
func (c *coordinator) writeCheckpoint(complete bool) {
	if c.opt.Checkpoint == "" {
		return
	}
	done := c.opt.Iterations - c.left
	if !complete && done == c.lastSaved {
		return // already persisted at this position
	}
	start := time.Now() //sonar:nondeterministic-ok checkpoint save duration feeds a metric, not canonical output
	cp := c.snapshot(complete)
	size, err := cp.Save(c.opt.Checkpoint)
	if err != nil {
		return
	}
	c.lastSaved = done
	c.opt.Observer.CheckpointSaved(done, size, time.Since(start)) //sonar:nondeterministic-ok operator-facing duration metric only
}
