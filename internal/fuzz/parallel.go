package fuzz

import (
	"math/rand"
	"sync"
	"time"
)

// defaultBatchSize is the per-worker iteration count between two corpus
// merges when Options.BatchSize is zero. Executions dominate the cost of an
// iteration, so a few dozen iterations amortize the merge barrier while
// keeping retention/selection feedback near-global.
const defaultBatchSize = 32

// RunParallel executes a sharded fuzzing campaign: Options.Workers workers,
// each owning a private DUT built by newDUT, execute batches of testcases
// against private corpus views; after every batch round a coordinator
// merges triggered points, per-point best intervals, and retained seeds in
// canonical worker order, and every worker restarts from the merged view.
//
// Determinism contract: worker w draws from rand.NewSource(opt.Seed+w), the
// batch schedule is static, and merges happen in worker order, so a
// campaign is reproducible for a fixed (Seed, Workers, BatchSize) — and
// Workers <= 1 reproduces Run's serial campaign exactly. The contract
// extends to observability: opt.Observer's events are emitted only here on
// the coordinator, in fold order, so the merged event stream (and
// Stats.PerIteration, which it mirrors) is byte-identical across runs;
// worker goroutines update atomic metrics only.
func RunParallel(newDUT func() *DUT, opt Options) *Stats {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	if opt.Iterations > 0 && workers > opt.Iterations {
		workers = opt.Iterations
	}
	batch := opt.BatchSize
	if batch <= 0 {
		batch = defaultBatchSize
	}

	// One private DUT per worker; elaboration and analysis are independent
	// and deterministic, so build them concurrently.
	ws := make([]*worker, workers)
	var wg sync.WaitGroup
	for i := range ws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ws[i] = newWorker(newDUT(), opt, rand.New(rand.NewSource(opt.Seed+int64(i))))
		}(i)
	}
	wg.Wait()

	// Static shard sizes: worker w owns iterations w, w+workers, ... of the
	// budget, drained in fixed-size batches.
	rem := make([]int, workers)
	for i := range rem {
		rem[i] = opt.Iterations / workers
		if i < opt.Iterations%workers {
			rem[i]++
		}
	}

	acc := newStatsAccum(ws[0].d, opt)
	opt.Observer.CampaignStart(ws[0].d.Analysis.Netlist.Name(), opt.Iterations, workers, batch, opt.Seed)
	global := NewCorpus()
	outs := make([][]outcome, workers)
	for left, round := opt.Iterations, 0; left > 0; {
		round++
		// Parallel phase: each worker drains one batch against its private
		// corpus view. Workers report utilization metrics themselves
		// (atomics); events stay with the coordinator below.
		for i, w := range ws {
			n := rem[i]
			if n > batch {
				n = batch
			}
			if n == 0 {
				outs[i] = nil
				continue
			}
			wg.Add(1)
			go func(w *worker, i, n int) {
				defer wg.Done()
				start := time.Now()
				outs[i] = w.runBatch(n)
				opt.Observer.WorkerBatch(i, n, time.Since(start))
			}(w, i, n)
		}
		wg.Wait()

		// Merge phase, canonical worker order: fold outcomes into the
		// global stats and re-offer retained seeds to the global corpus
		// (re-offering drops seeds another worker has already beaten).
		mergeStart := time.Now()
		merged := 0
		for i, w := range ws {
			for _, o := range outs[i] {
				acc.apply(o)
			}
			rem[i] -= len(outs[i])
			left -= len(outs[i])
			merged += len(outs[i])
			for _, s := range w.takeNewSeeds() {
				global.Offer(s.TC, s.Intvls, s.Dir, s.Target)
			}
		}

		// Distribute: every worker restarts from the merged global view.
		for _, w := range ws {
			w.corpus = global.Snapshot()
		}
		opt.Observer.BatchMerged(round, merged, global.Len(), time.Since(mergeStart))
	}
	acc.st.CorpusSize = global.Len()
	acc.finish()
	return acc.st
}
