// Package nutshell builds the NutShell-like DUT: the smaller of the paper's
// two out-of-order RISC-V cores (Table 1, second column). Its distinguishing
// microarchitecture — a non-pipelined Multiply-Divide Unit shared by mul and
// div (S13), a single-ported L1 ICache whose fetch reads contend with refill
// writes (S14), and early in-pipeline exception detection that collapses the
// Meltdown-style transient window (§8.5) — reproduces both NutShell side
// channels of paper Table 3 and the paper's finding that their PoC accuracy
// stays below 2%.
package nutshell

import (
	"sonar/internal/hdl/check"
	"sonar/internal/uarch"
)

// Arrays returns the structural array layout of the NutShell-like netlist.
// NutShell's RTL favours wider selection trees over BOOM's (its naive 2:1
// MUX count shrinks by 80.4% under bottom-up tracing, versus 71.5% for
// BOOM — paper Figure 6), so fanins here are higher while entry counts are
// smaller.
func Arrays() []uarch.ArraySpec {
	return []uarch.ArraySpec{
		// Frontend: small fetch buffer (8 entries, fetch width 2), BTB+PHT
		// predictor (Table 1), ICache metadata.
		{Component: "frontend", Name: "fetchbuf", Entries: 8, Fanin: 2, Width: 40, Role: uarch.RoleFetchBuf},
		{Component: "frontend", Name: "btb", Entries: 512, Fanin: 8, Width: 40, Role: uarch.RoleBTB},
		{Component: "frontend", Name: "pht", Entries: 1024, Fanin: 8, Width: 2},
		{Component: "frontend", Name: "icache_meta", Entries: 256, Fanin: 6, Width: 32},
		// ROB: 32 entries, single-wide dispatch plus redirect port.
		{Component: "rob", Name: "entries", Entries: 32, Fanin: 2, Width: 40, Role: uarch.RoleROB},
		{Component: "rob", Name: "wb", Entries: 32, Fanin: 4, Width: 8},
		// Execution complex: small issue window, 32 architectural registers.
		{Component: "exe", Name: "issueq", Entries: 16, Fanin: 4, Width: 32, Role: uarch.RoleIssueQ},
		{Component: "exe", Name: "regfile", Entries: 32, Fanin: 4, Width: 64, Role: uarch.RoleRegFile},
		// LSU: 8-entry store queue, DCache metadata.
		{Component: "lsu", Name: "lsq", Entries: 8, Fanin: 4, Width: 48},
		{Component: "lsu", Name: "dcache_meta", Entries: 512, Fanin: 6, Width: 32},
		// SimpleBus+AXI4 fabric and L2 metadata.
		{Component: "tilelink", Name: "xbar", Entries: 64, Fanin: 8, Width: 64},
		{Component: "tilelink", Name: "l2_meta", Entries: 512, Fanin: 6, Width: 32},
	}
}

// Filters returns the per-component volume of risk-filterable points
// (~36% of NutShell's traced points per Figure 7b).
func Filters() []uarch.FilterSpec {
	return []uarch.FilterSpec{
		{Component: "frontend", Const: 200, NoValid: 400, Fanin: 6},
		{Component: "lsu", Const: 120, NoValid: 300, Fanin: 4},
		{Component: "exe", Const: 80, NoValid: 150, Fanin: 4},
		{Component: "rob", Const: 40, NoValid: 80, Fanin: 4},
		{Component: "tilelink", Const: 60, NoValid: 170, Fanin: 6},
	}
}

// New builds a single-core NutShell-like SoC with the full structural
// netlist.
func New() *uarch.SoC {
	return uarch.NewSoC(uarch.NutshellConfig(), 1, Arrays(), Filters())
}

// NewLite builds a single-core NutShell-like SoC without the bulk
// structural arrays: same timing behaviour, far smaller netlist.
func NewLite() *uarch.SoC {
	return uarch.NewSoC(uarch.NutshellConfig(), 1, nil, nil)
}

// Check elaborates the SoC and structurally verifies its netlist (package
// check, externally-driven profile: the model pokes wires from Go code, so
// driver-coverage findings are informational). A non-nil error means the
// elaboration itself is broken — combinational cycle, double driver, or
// dense-id violation.
func Check() error {
	return check.Check(New().Net, check.Options{ExternallyDriven: true}).Err()
}
