package nutshell

import (
	"testing"

	"sonar/internal/trace"
)

func TestNetlistScaleMatchesPaper(t *testing.T) {
	s := New()
	a := trace.Analyze(s.Net)
	// Paper Figure 6: 23,618 naive MUXes -> 4,631 traced points.
	if a.NaiveMuxCount < 18_000 || a.NaiveMuxCount > 35_000 {
		t.Errorf("naive MUX count = %d, want paper-scale (~24k)", a.NaiveMuxCount)
	}
	if got := len(a.Points); got < 3_500 || got > 7_000 {
		t.Errorf("traced points = %d, want ~4.6k", got)
	}
	red := 1 - float64(len(a.Points))/float64(a.NaiveMuxCount)
	if red < 0.7 || red > 0.9 {
		t.Errorf("tracing reduction = %.1f%%, paper reports 80.4%%", 100*red)
	}
}

func TestChannelBearingStructures(t *testing.T) {
	s := New()
	// S13: the shared non-pipelined MDU entry point.
	if _, ok := s.Net.Signal("exe.mdu.op_in"); !ok {
		t.Error("MDU entry point missing (S13)")
	}
	// S14: the single-ported ICache access point.
	if _, ok := s.Net.Signal("frontend.icache.array_access"); !ok {
		t.Error("ICache access point missing (S14)")
	}
	cfg := s.Cores[0].Cfg
	if cfg.PipelinedMul {
		t.Error("NutShell must use the shared MDU, not a pipelined multiplier")
	}
	if !cfg.ICacheSinglePort {
		t.Error("NutShell ICache must be single-ported")
	}
	if !cfg.EarlyExceptionDetect {
		t.Error("NutShell must detect exceptions early (why its PoCs fail, §8.5)")
	}
}

func TestNutshellSmallerThanBoom(t *testing.T) {
	n := New()
	a := trace.Analyze(n.Net)
	// Deterministic sanity: filtering drops a larger share than on BOOM
	// (paper: 35.7% vs 26.2%).
	filtered := 1 - float64(len(a.Monitored()))/float64(len(a.Points))
	if filtered < 0.25 || filtered > 0.5 {
		t.Errorf("filtered share = %.1f%%, want ~36%%", 100*filtered)
	}
}

// Two independently elaborated SoCs must analyze to identical contention
// points (same IDs, same output signals): the parallel campaign engine
// merges triggered-point IDs across per-worker DUTs and relies on this.
func TestElaborationAnalysisDeterministic(t *testing.T) {
	a := trace.Analyze(NewLite().Net)
	b := trace.Analyze(NewLite().Net)
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i].ID != b.Points[i].ID ||
			a.Points[i].Out.Name() != b.Points[i].Out.Name() ||
			a.Points[i].Component != b.Points[i].Component {
			t.Fatalf("point %d differs across elaborations: %s vs %s",
				i, a.Points[i].Out.Name(), b.Points[i].Out.Name())
		}
	}
}
